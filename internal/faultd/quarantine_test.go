package faultd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dmafault/internal/campaign"
)

// panicScenario is a spec whose runs always panic (deterministically), the
// breaker's canonical customer.
func panicScenario() campaign.Scenario {
	return campaign.Scenario{Kind: campaign.KindWindowLadder, Seed: 41, FaultSpec: "scenario-panic@1"}
}

// quarantineServer builds a synchronous server with the breaker configured
// tightly enough to exercise every state in a handful of jobs.
func quarantineServer(threshold, probeAfter int) (*Server, *httptest.Server) {
	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.QuarantineThreshold = threshold
	srv.QuarantineProbeAfter = probeAfter
	return srv, httptest.NewServer(srv.Handler())
}

// submitAndFetch posts one job and returns its final state (the server is
// synchronous, so the job is terminal by the time the response arrives).
func submitAndFetch(t *testing.T, ts *httptest.Server, body string) Job {
	t.Helper()
	code, resp := post(t, ts.URL+"/campaigns", body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, resp)
	}
	var acc struct {
		ID int `json:"id"`
	}
	if err := json.Unmarshal(resp, &acc); err != nil {
		t.Fatal(err)
	}
	_, jb := get(t, ts.URL+"/campaigns/"+strconv.Itoa(acc.ID))
	var job Job
	if err := json.Unmarshal(jb, &job); err != nil {
		t.Fatal(err)
	}
	return job
}

// TestQuarantineTripsAndProbes walks the breaker through its whole
// lifecycle over the HTTP API: accumulate failures, trip, short-circuit,
// half-open probe, re-arm on a failing probe.
func TestQuarantineTripsAndProbes(t *testing.T) {
	srv, ts := quarantineServer(2, 1)
	defer ts.Close()

	set := []campaign.Scenario{panicScenario(), {Kind: campaign.KindWindowLadder, Seed: 42}}
	body := submitBody(t, Request{Workers: 2, Scenarios: set})

	// Jobs 1 and 2: the panic scenario executes and fails; the second
	// failure reaches the threshold and trips the breaker.
	for i := 1; i <= 2; i++ {
		job := submitAndFetch(t, ts, body)
		if job.Status != StatusDone || job.Summary.Panics != 1 || job.Summary.Quarantined != 0 {
			t.Fatalf("job %d: %+v", i, job.Summary)
		}
	}

	// Job 3: tripped and within the probe wait — the scenario
	// short-circuits to a recorded quarantined result; the clean sibling
	// still executes.
	job3 := submitAndFetch(t, ts, body)
	if job3.Summary.Quarantined != 1 || job3.Summary.Panics != 0 {
		t.Fatalf("job 3: %+v", job3.Summary)
	}
	if out := job3.Summary.Results[0].Outcome; out != campaign.OutcomeQuarantined {
		t.Fatalf("job 3 result[0] outcome %q", out)
	}
	if job3.Summary.Results[1].Outcome == campaign.OutcomeQuarantined {
		t.Fatal("clean sibling was quarantined too")
	}

	// Job 4: the probe wait (1 job) has elapsed — half-open lets the
	// scenario run once; it panics again, re-arming the wait.
	job4 := submitAndFetch(t, ts, body)
	if job4.Summary.Panics != 1 || job4.Summary.Quarantined != 0 {
		t.Fatalf("job 4 (probe): %+v", job4.Summary)
	}

	// Job 5: back to short-circuiting.
	job5 := submitAndFetch(t, ts, body)
	if job5.Summary.Quarantined != 1 {
		t.Fatalf("job 5: %+v", job5.Summary)
	}

	_, text := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"faultd_quarantine_trips_total 1",
		"faultd_quarantine_probes_total 1",
		"faultd_scenarios_quarantined_total 2",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("exposition missing %q:\n%s", want, grepFaultd(text))
		}
	}
	srv.Wait()
}

// TestQuarantineDecisionsDeterministicAcrossWorkerCounts: once tripped, the
// same job submitted at different engine widths quarantines the same
// scenarios and produces byte-identical summaries.
func TestQuarantineDecisionsDeterministicAcrossWorkerCounts(t *testing.T) {
	// A long probe wait keeps the breaker tripped for the whole test.
	srv, ts := quarantineServer(2, 50)
	defer ts.Close()

	set := []campaign.Scenario{
		{Kind: campaign.KindWindowLadder, Seed: 60},
		panicScenario(),
		{Kind: campaign.KindWindowLadder, Seed: 61},
		{Kind: campaign.KindWindowLadder, Seed: 62},
	}
	for i := 0; i < 2; i++ { // trip the breaker
		submitAndFetch(t, ts, submitBody(t, Request{Workers: 2, Scenarios: set}))
	}

	var ref []byte
	for _, workers := range []int{1, 4, 16} {
		job := submitAndFetch(t, ts, submitBody(t, Request{Workers: workers, Scenarios: set}))
		if job.Summary.Quarantined != 1 {
			t.Fatalf("workers=%d: %+v", workers, job.Summary)
		}
		got, err := job.Summary.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
		} else if !bytes.Equal(got, ref) {
			t.Fatalf("workers=%d: quarantined summary differs from workers=1", workers)
		}
	}
	srv.Wait()
}

// TestQuarantineBreakerUnit drives the breaker struct directly through the
// transitions the HTTP tests cannot reach deterministically — most
// importantly a clean probe healing the breaker entirely.
func TestQuarantineBreakerUnit(t *testing.T) {
	q := newQuarantine(2, 1)
	keys := []string{"kA", "kB"}
	fail := &campaign.Result{Outcome: campaign.OutcomePanic}
	clean := &campaign.Result{}

	// Two failing jobs trip kA; kB stays clean.
	for i := 0; i < 2; i++ {
		adm, probes := q.admit(keys)
		if len(adm.blocked) != 0 || probes != 0 {
			t.Fatalf("job %d admitted with verdicts: %+v", i, adm)
		}
		trips := q.report(adm, keys, []*campaign.Result{fail, clean})
		if want := i; trips != want { // second report trips
			t.Fatalf("job %d: %d trips, want %d", i, trips, want)
		}
	}

	// Next job: blocked, sits out the probe wait.
	adm, probes := q.admit(keys)
	if !adm.blocked["kA"] || adm.blocked["kB"] || probes != 0 {
		t.Fatalf("tripped admit: %+v", adm)
	}
	// Quarantined outcomes must not feed back as failures.
	q.report(adm, keys, []*campaign.Result{{Outcome: campaign.OutcomeQuarantined}, clean})

	// Probe wait elapsed: half-open admits one probe.
	adm, probes = q.admit(keys)
	if !adm.probes["kA"] || len(adm.blocked) != 0 || probes != 1 {
		t.Fatalf("half-open admit: %+v probes=%d", adm, probes)
	}
	// While the probe is in flight, a concurrent job is still blocked (no
	// double probes).
	adm2, probes2 := q.admit(keys)
	if !adm2.blocked["kA"] || probes2 != 0 {
		t.Fatalf("concurrent admit during probe: %+v", adm2)
	}
	q.report(adm2, keys, []*campaign.Result{{Outcome: campaign.OutcomeQuarantined}, clean})

	// The probe comes back clean: the breaker resets completely.
	q.report(adm, keys, []*campaign.Result{clean, clean})
	adm, probes = q.admit(keys)
	if len(adm.blocked) != 0 || probes != 0 {
		t.Fatalf("healed breaker still blocking: %+v", adm)
	}
	// Healing cleared the failure history too: one new failure does not
	// re-trip a threshold-2 breaker.
	if trips := q.report(adm, keys, []*campaign.Result{fail, clean}); trips != 0 {
		t.Fatal("healed breaker tripped on a single failure")
	}
}

// TestQuarantineAbortReleasesProbe: a probe job that dies without results
// (cancelled, stalled) frees the half-open slot instead of wedging it.
func TestQuarantineAbortReleasesProbe(t *testing.T) {
	q := newQuarantine(1, 1)
	keys := []string{"kA"}
	fail := &campaign.Result{Outcome: campaign.OutcomeTimeout}

	adm, _ := q.admit(keys)
	q.report(adm, keys, []*campaign.Result{fail}) // trip
	q.admit(keys)                                 // sits out the wait
	adm, probes := q.admit(keys)
	if probes != 1 {
		t.Fatalf("expected a probe admission, got %+v", adm)
	}
	q.abort(adm) // probe job cancelled mid-flight

	// The slot is free again: the very next job gets the probe.
	_, probes = q.admit(keys)
	if probes != 1 {
		t.Fatal("aborted probe wedged the half-open slot")
	}
}
