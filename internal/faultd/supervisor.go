package faultd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/fuzz"
	"dmafault/internal/obs"
)

// Supervision layer: admission control, the FIFO scheduler, the stuck-job
// watchdog, and graceful drain.
//
// Lifecycle of a job: admit (reject when draining or the queue is full) →
// pending queue → dispatcher (starts jobs oldest-first, holding one of
// MaxConcurrent slots) → runWorker (watchdog armed, engine executes) →
// terminal status. Every accepted job reaches a terminal status — jobs are
// never silently dropped: drain lets queued and running jobs finish, and a
// drain deadline cancels them into StatusCancelled with their completed
// scenarios journaled.

// Admission rejections, mapped to HTTP statuses by handleSubmit.
var (
	errDraining  = errors.New("faultd: draining")
	errQueueFull = errors.New("faultd: queue full")
)

// queueCap resolves the configured queue bound.
func (s *Server) queueCap() int {
	if s.QueueDepth > 0 {
		return s.QueueDepth
	}
	return DefaultQueueDepth
}

// admit applies admission control and, if accepted, registers the job in
// the table and hands it to the scheduler. Synchronous servers skip the
// queue (handleSubmit runs the job inline); asynchronous ones enqueue for
// the dispatcher. The returned error is errDraining or errQueueFull. A
// non-nil req.Fuzz makes the job a fuzz campaign (scs is nil; the progress
// total is the fuzz execution budget).
func (s *Server) admit(req *Request, scs []campaign.Scenario) (*Job, error) {
	total := len(scs)
	if req.Fuzz != nil {
		total = req.Fuzz.Attempts
		if total <= 0 {
			total = fuzz.DefaultBudget
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		return nil, errDraining
	}
	if !s.Synchronous && len(s.pending) >= s.queueCap() {
		s.mu.Unlock()
		cancel()
		return nil, errQueueFull
	}
	job := &Job{
		Job: api.Job{
			ID: s.nextID, Name: req.Name, Status: StatusQueued,
			ScenariosTotal: total,
		},
		ctx: ctx, cancel: cancel,
		scs: scs, workers: req.Workers,
		fuzzSpec: req.Fuzz, fuzzSeed: req.Seed,
		enqueuedAt: s.now(),
		hub:        obs.NewHub(),
	}
	s.nextID++
	s.register(job)
	s.mu.Unlock()
	s.campaignsStarted.Inc()
	return job, nil
}

// register adds the job to the table and (for asynchronous servers) the
// pending queue, waking the dispatcher. Callers hold s.mu.
func (s *Server) register(job *Job) {
	s.jobs = append(s.jobs, job)
	s.jobsByID[job.ID] = job
	s.wg.Add(1)
	if s.Synchronous {
		return
	}
	s.pending = append(s.pending, job)
	s.queueDepthG.Add(1)
	s.ensureDispatcherLocked()
	s.cond.Signal()
}

// ensureDispatcherLocked lazily starts the dispatcher goroutine and the
// concurrency semaphore on first use, after the configuration fields are
// final. Callers hold s.mu.
func (s *Server) ensureDispatcherLocked() {
	if s.dispatchOn {
		return
	}
	s.dispatchOn = true
	if s.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, s.MaxConcurrent)
	}
	go s.dispatch()
}

// dispatch is the scheduler loop: it starts pending jobs strictly
// oldest-first, blocking on a concurrency slot before taking the next job,
// so queue order is also start order. A job cancelled while queued is
// retired without consuming a slot.
func (s *Server) dispatch() {
	s.mu.Lock()
	for {
		for len(s.pending) == 0 && !s.stopDispatch {
			s.cond.Wait()
		}
		if len(s.pending) == 0 && s.stopDispatch {
			s.mu.Unlock()
			return
		}
		job := s.pending[0]
		s.pending = s.pending[1:]
		wait := s.now().Sub(job.enqueuedAt)
		job.queueWait = wait // reported back in the job's Timing breakdown
		s.mu.Unlock()
		s.queueDepthG.Add(-1)
		s.queueWait.Observe(wait.Seconds())
		// The dispatcher measured the wait itself, so the span is synthesized
		// complete rather than minted through an ActiveSpan.
		s.emitSpan(job, obs.Span{
			Name:           "queue-wait",
			StartUnixNanos: job.enqueuedAt.UnixNano(),
			DurationNanos:  int64(wait),
			Attrs:          map[string]string{"job": fmt.Sprintf("%d", job.ID)},
		})
		s.logger().Debug("dispatching job", "job", job.ID, "queue_wait", wait)
		if job.ctx.Err() != nil {
			s.retireCancelled(job)
			s.mu.Lock()
			continue
		}
		if s.sem != nil {
			s.sem <- struct{}{}
		}
		go func(job *Job) {
			defer func() {
				if s.sem != nil {
					<-s.sem
				}
			}()
			s.runWorker(job)
		}(job)
		s.mu.Lock()
	}
}

// retireCancelled finalizes a job that was cancelled before it ever started
// executing (DELETE while queued, or a drain deadline).
func (s *Server) retireCancelled(job *Job) {
	defer s.wg.Done()
	s.mu.Lock()
	job.Status = StatusCancelled
	job.Error = "cancelled"
	s.mu.Unlock()
	s.campaignsCancelled.Inc()
	s.publishTerminal(job)
}

// runWorker executes one job end to end: admission through the quarantine
// breaker, watchdog arming, engine execution, terminal bookkeeping. It runs
// on its own goroutine (or inline for Synchronous servers) with a scheduler
// slot held.
func (s *Server) runWorker(job *Job) {
	defer s.wg.Done()
	if job.ctx.Err() != nil {
		s.mu.Lock()
		job.Status = StatusCancelled
		job.Error = "cancelled"
		s.mu.Unlock()
		s.campaignsCancelled.Inc()
		s.publishTerminal(job)
		return
	}
	s.quarantineAdmit(job)
	s.mu.Lock()
	job.Status = StatusRunning
	job.lastBeat = s.now()
	s.runningN++
	if s.runningN > s.peakRunning {
		s.peakRunning = s.runningN
		s.peakRunningG.Set(float64(s.peakRunning))
	}
	s.mu.Unlock()
	s.running.Add(1)
	stopWatch := make(chan struct{})
	if s.StallTimeout > 0 {
		go s.watchJob(job, stopWatch)
	}
	s.runJob(job)
	close(stopWatch)
	job.cancel()
	s.running.Add(-1)
	s.mu.Lock()
	s.runningN--
	s.mu.Unlock()
}

// watchJob is the stuck-job watchdog: it polls the job's progress heartbeat
// (refreshed on every scenario claim and completion) and cancels the job
// once the heartbeat is older than StallTimeout, marking it stalled so
// runJob records the structured outcome.
func (s *Server) watchJob(job *Job, stop <-chan struct{}) {
	interval := s.StallTimeout / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.mu.Lock()
			stalled := job.Status == StatusRunning && s.now().Sub(job.lastBeat) > s.StallTimeout
			if stalled {
				job.stalled = true
			}
			s.mu.Unlock()
			if stalled {
				s.logger().Warn("watchdog cancelling stalled job",
					"job", job.ID, "stall_timeout", s.StallTimeout)
				job.cancel()
				return
			}
		}
	}
}

// Wait blocks until every accepted job has finished — test and shutdown
// hygiene.
func (s *Server) Wait() { s.wg.Wait() }

// CancelAll aborts every queued or running job's context. Running jobs
// finish their claimed scenarios, journal them, and publish
// StatusCancelled; queued ones retire without starting.
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if (j.Status == StatusRunning || j.Status == StatusQueued) && j.cancel != nil {
			j.cancel()
		}
	}
}

// BeginDrain flips the server into drain mode: from this point every new
// submission is rejected with 503 and /healthz reports "draining". Already
// accepted jobs (queued or running) are unaffected.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain is graceful shutdown for the job plane: it stops admissions
// (BeginDrain), then waits for queued and in-flight jobs to complete; if
// ctx expires first it cancels the stragglers (which stop claiming
// scenarios, journal the ones they finished, and drain) and waits for them
// to wind down, returning the ctx error. The dispatcher goroutine exits
// once the queue is empty.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	defer s.stopDispatcher()
	// The shutdown flight dump ships after the job plane has wound down, so
	// the retained window covers the whole drain.
	defer s.flightDump("shutdown", nil)
	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.logger().Warn("drain deadline expired, cancelling remaining jobs")
		s.CancelAll()
		<-idle
		return ctx.Err()
	}
}

// stopDispatcher tells the scheduler loop to exit after the pending queue
// empties (it is already empty when Drain returns).
func (s *Server) stopDispatcher() {
	s.mu.Lock()
	s.stopDispatch = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
