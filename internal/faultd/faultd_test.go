package faultd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServiceEndToEnd is the tentpole acceptance test: boot the service,
// probe /healthz and pprof, run a preset campaign through the job API, and
// read the machine metrics back off /metrics.
func TestServiceEndToEnd(t *testing.T) {
	srv := NewServer()
	srv.Workers = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/debug/pprof/cmdline"); code != 200 {
		t.Errorf("pprof cmdline: %d", code)
	}

	// Submit a small preset campaign.
	code, body := post(t, ts.URL+"/campaigns", `{"name":"smoke","preset":"ladder","n":4,"seed":2021}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID             int    `json:"id"`
		URL            string `json:"url"`
		ScenariosTotal int    `json:"scenarios_total"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID != 1 || acc.URL != "/v1/campaigns/1" || acc.ScenariosTotal != 4 {
		t.Fatalf("accepted %+v", acc)
	}

	// Poll until done (live progress en route).
	var job Job
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := get(t, ts.URL+"/campaigns/1")
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status != StatusRunning && job.Status != StatusQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", job)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if job.Status != StatusDone || job.Error != "" {
		t.Fatalf("job failed: %+v", job)
	}
	if job.ScenariosDone != 4 || job.Summary == nil || job.Summary.Scenarios != 4 {
		t.Fatalf("progress/summary wrong: %+v", job)
	}
	if job.Summary.Metrics == nil || job.Summary.Metrics.Total("iommu_maps_total") == 0 {
		t.Fatal("campaign summary carries no machine metrics")
	}

	// The exposition merges service and campaign planes.
	code, body = get(t, ts.URL+"/metrics")
	if code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	text := string(body)
	for _, want := range []string{
		"faultd_campaigns_completed_total 1",
		"faultd_scenarios_completed_total 4",
		"faultd_campaigns_running 0",
		"campaign_scenarios_total 4",
		"# TYPE iommu_maps_total counter",
		"netstack_rx_packets_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Job listing stays lightweight (no inline summaries).
	_, body = get(t, ts.URL+"/campaigns")
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].Summary != nil {
		t.Fatalf("listing: %+v", list)
	}
}

func TestSubmitExplicitScenarios(t *testing.T) {
	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _ := post(t, ts.URL+"/campaigns",
		`{"scenarios":[{"kind":"window-ladder","seed":7,"driver":"correct","mode":"strict"}]}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	_, body := get(t, ts.URL+"/campaigns/1")
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Status != StatusDone || job.Summary == nil || job.Summary.Successes != 1 {
		t.Fatalf("job: %+v", job)
	}
	// Strict-mode machine: the strict invalidation counter must be visible.
	if job.Summary.Metrics.Total("iommu_strict_invalidations_total") == 0 {
		t.Error("strict invalidations not counted")
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, bad := range []string{
		`{}`,
		`{"preset":"warp"}`,
		`{"preset":"ladder","scenarios":[{"kind":"window-ladder"}]}`,
		fmt.Sprintf(`{"preset":"ladder","n":%d}`, MaxScenarios+1),
		`not json`,
	} {
		if code, _ := post(t, ts.URL+"/campaigns", bad); code != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", bad, code)
		}
	}
	// Unknown job and non-numeric id.
	if code, _ := get(t, ts.URL+"/campaigns/99"); code != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", code)
	}
	if code, _ := get(t, ts.URL+"/campaigns/xyz"); code != http.StatusBadRequest {
		t.Errorf("bad id: %d, want 400", code)
	}
	// Method routing: GET on the collection works, DELETE does not.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/campaigns", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /campaigns: %d, want 405", resp.StatusCode)
	}
	srv.Wait()
}

// TestMetricsAccumulateAcrossJobs pins the merge behavior: two identical
// jobs double the campaign-plane counters on /metrics.
func TestMetricsAccumulateAcrossJobs(t *testing.T) {
	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The ladder preset emits one scenario per grid cell (2 drivers × 2
	// modes), so each job runs 4 scenarios.
	body := `{"preset":"ladder","n":4,"seed":5}`
	for i := 0; i < 2; i++ {
		if code, resp := post(t, ts.URL+"/campaigns", body); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, code, resp)
		}
	}
	_, text := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), "campaign_scenarios_total 8") {
		t.Errorf("merged dump did not accumulate across jobs:\n%.600s", text)
	}
	if !strings.Contains(string(text), "faultd_campaigns_completed_total 2") {
		t.Error("service counter wrong")
	}
}
