package faultd

import (
	"sync"

	"dmafault/internal/campaign"
)

// Scenario quarantine: a circuit breaker over scenario *keys* (the
// position-independent fingerprint campaign.ScenarioKey). A scenario whose
// runs panic or blow their deadline QuarantineThreshold times across jobs
// trips the breaker; from then on jobs record a deterministic
// Outcome:"quarantined" result for it instead of executing. After
// QuarantineProbeAfter further jobs have sat the scenario out, one job is
// admitted as a half-open probe: a clean probe resets the breaker entirely,
// a failing one re-arms the wait.
//
// Determinism: breaker state only changes at job boundaries (admission and
// completion), never while a job's workers are racing. Each job snapshots
// its verdicts into an admission at start, so which scenarios short-circuit
// is a pure function of the job-start order — identical at any engine
// worker count.

// DefaultProbeAfter is the half-open wait (in jobs) when the caller leaves
// QuarantineProbeAfter zero.
const DefaultProbeAfter = 2

type quarantine struct {
	mu         sync.Mutex
	threshold  int
	probeAfter int
	entries    map[string]*qEntry
}

type qEntry struct {
	failures      int  // panic/timeout outcomes observed across jobs
	tripped       bool // short-circuiting
	jobsSinceTrip int  // jobs admitted while tripped (drives half-open)
	probing       bool // one probe job is in flight
}

// admission is one job's snapshot of breaker verdicts, fixed at job start.
type admission struct {
	blocked map[string]bool // keys that short-circuit this job
	probes  map[string]bool // keys this job runs as half-open probes
}

func newQuarantine(threshold, probeAfter int) *quarantine {
	if probeAfter <= 0 {
		probeAfter = DefaultProbeAfter
	}
	return &quarantine{threshold: threshold, probeAfter: probeAfter,
		entries: map[string]*qEntry{}}
}

// entry returns (allocating) the state for a key.
func (q *quarantine) entry(key string) *qEntry {
	e := q.entries[key]
	if e == nil {
		e = &qEntry{}
		q.entries[key] = e
	}
	return e
}

// admit snapshots verdicts for one job's scenario keys. Tripped keys are
// blocked; a tripped key whose half-open wait has elapsed (and that has no
// probe already in flight) is admitted as a probe instead. probes reports
// how many probe admissions were granted (for the service counter).
func (q *quarantine) admit(keys []string) (adm *admission, probes int) {
	adm = &admission{blocked: map[string]bool{}, probes: map[string]bool{}}
	q.mu.Lock()
	defer q.mu.Unlock()
	seen := map[string]bool{}
	for _, k := range keys {
		if seen[k] {
			continue
		}
		seen[k] = true
		e := q.entries[k]
		if e == nil || !e.tripped {
			continue
		}
		e.jobsSinceTrip++
		if e.jobsSinceTrip > q.probeAfter && !e.probing {
			e.probing = true
			adm.probes[k] = true
			probes++
			continue
		}
		adm.blocked[k] = true
	}
	return adm, probes
}

// report feeds one finished job's results back into the breaker: non-probe
// panic/timeout outcomes accumulate toward the threshold (tripping the
// breaker when reached), and probe keys are resolved — clean probes reset
// the breaker, failing ones re-arm the half-open wait. trips reports how
// many keys tripped on this job. results are index-aligned with keys;
// quarantined outcomes never count as failures.
func (q *quarantine) report(adm *admission, keys []string, results []*campaign.Result) (trips int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	probeFailed := map[string]bool{}
	probeSeen := map[string]bool{}
	for i, r := range results {
		if r == nil || i >= len(keys) {
			continue
		}
		k := keys[i]
		failed := r.Outcome == campaign.OutcomePanic || r.Outcome == campaign.OutcomeTimeout
		if adm != nil && adm.probes[k] {
			probeSeen[k] = true
			if failed {
				probeFailed[k] = true
			}
			continue
		}
		if r.Outcome == campaign.OutcomeQuarantined || !failed {
			continue
		}
		e := q.entry(k)
		e.failures++
		if !e.tripped && e.failures >= q.threshold {
			e.tripped = true
			e.jobsSinceTrip = 0
			trips++
		}
	}
	for k := range probeSeen {
		e := q.entry(k)
		e.probing = false
		if probeFailed[k] {
			e.jobsSinceTrip = 0 // still broken: wait out another round
		} else {
			delete(q.entries, k) // healed: full reset
		}
	}
	return trips
}

// abort releases probe reservations of a job that never produced results
// (cancelled, stalled, or failed before aggregation), so the half-open slot
// is not wedged forever.
func (q *quarantine) abort(adm *admission) {
	if adm == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	for k := range adm.probes {
		if e := q.entries[k]; e != nil {
			e.probing = false
		}
	}
}

// --- Server integration -------------------------------------------------

// quarantineEnabled reports whether the breaker is configured.
func (s *Server) quarantineEnabled() bool { return s.QuarantineThreshold > 0 }

// breaker returns the lazily-constructed quarantine (construction is
// deferred so NewServer has no configuration ordering constraints).
func (s *Server) breaker() *quarantine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quarantine == nil {
		s.quarantine = newQuarantine(s.QuarantineThreshold, s.QuarantineProbeAfter)
	}
	return s.quarantine
}

// quarantineAdmit computes the job's scenario keys and breaker snapshot
// just before it starts.
func (s *Server) quarantineAdmit(job *Job) {
	if !s.quarantineEnabled() {
		return
	}
	q := s.breaker()
	keys := make([]string, len(job.scs))
	for i := range job.scs {
		keys[i] = campaign.ScenarioKey(job.scs[i])
	}
	adm, probes := q.admit(keys)
	if probes > 0 {
		s.quarantineProbes.Add(uint64(probes))
	}
	s.mu.Lock()
	job.keys = keys
	job.adm = adm
	s.mu.Unlock()
}

// quarantineGate builds the engine Gate for the job: blocked scenario
// indexes short-circuit to a recorded quarantined result. The admission is
// fixed for the job's lifetime, so the gate is deterministic at any worker
// count.
func (s *Server) quarantineGate(job *Job) func(int, *campaign.Scenario) *campaign.Result {
	adm, keys := job.adm, job.keys
	if adm == nil || len(adm.blocked) == 0 {
		return nil
	}
	return func(i int, sc *campaign.Scenario) *campaign.Result {
		if i >= len(keys) || !adm.blocked[keys[i]] {
			return nil
		}
		s.scenariosQuarantined.Inc()
		return campaign.QuarantinedResult(sc)
	}
}

// quarantineReport resolves the finished job against the breaker.
func (s *Server) quarantineReport(job *Job, results []*campaign.Result) {
	if !s.quarantineEnabled() || job.keys == nil {
		return
	}
	if trips := s.breaker().report(job.adm, job.keys, results); trips > 0 {
		s.quarantineTrips.Add(uint64(trips))
		s.logger().Warn("quarantine breaker tripped", "job", job.ID, "trips", trips)
		s.flightDump("quarantine", job)
	}
}

// quarantineAbort releases the job's probe reservations when it ends
// without results.
func (s *Server) quarantineAbort(job *Job) {
	if !s.quarantineEnabled() || job.adm == nil {
		return
	}
	s.breaker().abort(job.adm)
}
