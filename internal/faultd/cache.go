package faultd

import (
	"encoding/json"
	"net/http"

	"dmafault/internal/faultd/api"
)

// Cache admin endpoints. The store itself is wired into jobs by runJob and
// runFuzzJob; these handlers only expose its bookkeeping.

// handleCacheStats serves GET /v1/cache/stats. A daemon running without
// -cache-dir still answers 200 — Enabled false tells the client the cache
// plane is off, which is an answer, not an error.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	var out api.CacheStats
	if s.Cache != nil {
		out.Enabled = true
		out.Stats = s.Cache.Stats()
		if n := out.Hits + out.Misses; n > 0 {
			out.HitRate = float64(out.Hits) / float64(n)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(&out)
}

// handleCacheClear serves DELETE /v1/cache: truncate the shared log and
// empty the index. Running jobs simply start missing; their executions
// repopulate the store. 404 without -cache-dir — there is nothing to clear.
func (s *Server) handleCacheClear(w http.ResponseWriter, r *http.Request) {
	if s.Cache == nil {
		http.Error(w, "no result cache configured (-cache-dir)", http.StatusNotFound)
		return
	}
	dropped, err := s.Cache.Clear()
	if err != nil {
		http.Error(w, "clear cache: "+err.Error(), http.StatusInternalServerError)
		return
	}
	s.logger().Info("result cache cleared", "records_dropped", dropped)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(api.ClearCacheResponse{Cleared: true, RecordsDropped: dropped})
}
