package faultd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dmafault/internal/campaign"
)

func del(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// stallBody builds a submission whose scenarios each hang 250ms on an
// injected stall — slow enough to cancel mid-flight, fast enough for tests.
func stallBody(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"name":"stall","workers":1,"scenarios":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"kind":"window-ladder","seed":%d,"fault_spec":"scenario-stall@1"}`, i)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

func pollJob(t *testing.T, url string) Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		_, body := get(t, url)
		var job Job
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
		if job.Status != StatusRunning && job.Status != StatusQueued {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", job)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancelRunningJob(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// 8 serial 250ms stalls: ~2s uncancelled, so the DELETE lands mid-run.
	code, _ := post(t, ts.URL+"/campaigns", stallBody(8))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	code, body := del(t, ts.URL+"/campaigns/1")
	if code != http.StatusAccepted {
		t.Fatalf("cancel: %d %s", code, body)
	}
	if !strings.Contains(string(body), `"cancelling"`) {
		t.Fatalf("cancel body: %s", body)
	}

	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusCancelled || job.Error != "cancelled" {
		t.Fatalf("job after cancel: %+v", job)
	}
	if job.ScenariosDone >= job.ScenariosTotal {
		t.Fatalf("cancelled job completed all %d scenarios", job.ScenariosTotal)
	}
	srv.Wait()

	// Cancelling a finished job conflicts; bad ids behave like handleJob.
	if code, _ := del(t, ts.URL+"/campaigns/1"); code != http.StatusConflict {
		t.Errorf("second cancel: %d, want 409", code)
	}
	if code, _ := del(t, ts.URL+"/campaigns/99"); code != http.StatusNotFound {
		t.Errorf("cancel missing job: %d, want 404", code)
	}
	if code, _ := del(t, ts.URL+"/campaigns/xyz"); code != http.StatusBadRequest {
		t.Errorf("cancel bad id: %d, want 400", code)
	}

	_, text := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(text), "faultd_campaigns_cancelled_total 1") {
		t.Error("cancellation not counted on /metrics")
	}
}

// TestDrainLetsInFlightJobFinish is the SIGTERM-path contract: with a
// generous deadline, Drain blocks until running jobs complete normally.
func TestDrainLetsInFlightJobFinish(t *testing.T) {
	srv := NewServer()
	srv.Workers = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", `{"preset":"ladder","n":4,"seed":2021}`); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusDone || job.Summary == nil {
		t.Fatalf("drained job did not finish cleanly: %+v", job)
	}
}

// TestDrainDeadlineCancelsStragglers: when the shutdown budget expires, the
// remaining jobs are cancelled (not abandoned) and Drain still returns.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", stallBody(8)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain err = %v, want deadline exceeded", err)
	}
	// Drain returns only after the cancelled jobs wound down.
	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusCancelled {
		t.Fatalf("straggler status %q, want cancelled", job.Status)
	}
}

// TestJournalDirRecordsCompletedScenarios: every job writes a journal that
// cmd/campaign --resume can replay against the same scenario set.
func TestJournalDirRecordsCompletedScenarios(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.Workers = 2
	srv.Synchronous = true
	srv.JournalDir = dir
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", `{"preset":"ladder","n":4,"seed":5}`); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	job := pollJob(t, ts.URL+"/campaigns/1")
	if job.Status != StatusDone {
		t.Fatalf("job: %+v", job)
	}
	// The journal must load against the same server-side generated set.
	scs := campaign.Presets["ladder"](4, 5)
	restored, err := campaign.LoadJournal(filepath.Join(dir, "job-1.jsonl"), scs)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 4 {
		t.Fatalf("journal restored %d/4 scenarios", len(restored))
	}
}
