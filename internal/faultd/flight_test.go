package faultd

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/obs"
)

// Flight-recorder dump coverage: each supervisor trigger — stall, panic,
// quarantine trip, and shutdown (the SIGTERM path drives Drain) — must ship
// the recorder's retained window to the journal directory as a parseable
// JSONL file whose trigger event is recorded inside it.

// readDump loads and decodes one dump file, asserting the self-labelling
// flight-dump event is present with the expected trigger message.
func readDump(t *testing.T, path, trigger string) []obs.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump for trigger %q missing: %v", trigger, err)
	}
	defer f.Close()
	recs, err := obs.ReadRecordsJSONL(f)
	if err != nil {
		t.Fatalf("dump %s unparseable: %v", path, err)
	}
	for _, r := range recs {
		if r.Kind == obs.RecordEvent && r.Name == "flight-dump" && r.Msg == trigger {
			return recs
		}
	}
	t.Fatalf("dump %s carries no flight-dump event for trigger %q (%d records)", path, trigger, len(recs))
	return nil
}

func TestFlightDumpOnStall(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.JournalDir = dir
	srv.Recorder = obs.NewRecorder(0)
	srv.StallTimeout = 60 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _ := post(t, ts.URL+"/campaigns", stallBody(2)); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	if job := pollJob(t, ts.URL+"/campaigns/1"); job.Status != StatusStalled {
		t.Fatalf("job ended %q, want stalled", job.Status)
	}
	srv.Wait()
	recs := readDump(t, filepath.Join(dir, "flight-stall-job-1.jsonl"), "stall")
	// The window also retains the spans and events leading up to the stall.
	var spans int
	for _, r := range recs {
		if r.Kind == obs.RecordSpan {
			spans++
		}
	}
	if spans == 0 {
		t.Error("stall dump retained no spans")
	}
}

func TestFlightDumpOnPanic(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.Synchronous = true
	srv.JournalDir = dir
	srv.Recorder = obs.NewRecorder(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job := submitAndFetch(t, ts, submitBody(t, Request{Workers: 1,
		Scenarios: []campaign.Scenario{panicScenario(), {Kind: panicScenario().Kind, Seed: 99}}}))
	if job.Status != StatusDone {
		t.Fatalf("panic job ended %q (a panicking scenario is a recorded result, not a job failure)", job.Status)
	}
	readDump(t, filepath.Join(dir, "flight-panic-job-1.jsonl"), "panic")
}

func TestFlightDumpOnQuarantineTrip(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.Synchronous = true
	srv.JournalDir = dir
	srv.Recorder = obs.NewRecorder(0)
	srv.QuarantineThreshold = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if job := submitAndFetch(t, ts, submitBody(t, Request{Workers: 1,
		Scenarios: []campaign.Scenario{panicScenario()}})); job.Status != StatusDone {
		t.Fatalf("trip job ended %q", job.Status)
	}
	readDump(t, filepath.Join(dir, "flight-quarantine-job-1.jsonl"), "quarantine")
}

func TestFlightDumpOnShutdown(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.JournalDir = dir
	srv.Recorder = obs.NewRecorder(0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	readDump(t, filepath.Join(dir, "flight-shutdown.jsonl"), "shutdown")
}

// TestFlightDumpAbsentWithoutRecorder: triggers fire but ship nothing when
// no recorder is attached — the dump path must stay nil-safe and silent.
func TestFlightDumpAbsentWithoutRecorder(t *testing.T) {
	dir := t.TempDir()
	srv := NewServer()
	srv.JournalDir = dir
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "flight-shutdown.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("dump shipped without a recorder (err=%v)", err)
	}
}
