// Package fleetobs is the coordinator-side fleet telemetry plane: a scrape
// loop that periodically fetches every registered worker's /v1/metrics and
// /readyz through the typed client, merges the per-worker snapshots with the
// order-stable metrics.Merge, and folds the result — together with the
// fabric registry's per-worker delivery accounting — into a typed
// api.FleetSnapshot served at GET /v1/fleet and published as periodic
// "fleet" SSE events on the coordinator hub.
//
// Two planes, one determinism contract. The campaign's control path (leases,
// deliveries, summary bytes) never reads anything this package produces:
// scrape jitter, worker restarts, and scrape failures change the fleet
// snapshot but cannot change a byte of the merged campaign summary. Within
// the fleet plane itself the snapshot is a pure function of (registry state,
// last scrape state) — no timestamps, no scrape counters in the document —
// so two snapshots of identical fleet state are byte-identical, and the
// /v1/fleet golden tests can pin the encoding.
//
// Staleness semantics: a worker that has never answered a scrape contributes
// no metrics and reports Ready false. A worker whose latest scrape failed
// after earlier successes is marked Stale and keeps contributing its last
// good snapshot — operators see the freshest truth available, flagged as
// aging, rather than a row flickering empty on every network blip.
package fleetobs

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
	"dmafault/internal/metrics"
	"dmafault/internal/obs"
)

// Defaults for Config's zero values.
const (
	// DefaultInterval paces scrape rounds (and the "fleet" SSE cadence).
	DefaultInterval = time.Second
	// DefaultTimeout bounds one worker's scrape (readyz + metrics).
	DefaultTimeout = 2 * time.Second
)

// Config parameterizes a Plane.
type Config struct {
	// Interval paces scrape rounds (0: DefaultInterval).
	Interval time.Duration
	// Timeout bounds one worker's scrape (0: DefaultTimeout).
	Timeout time.Duration
	// Workers returns the registry's half of the snapshot: one URL-sorted
	// row per registered worker with the delivery accounting filled in
	// (fabric.Registry.FleetState). Required.
	Workers func() []api.FleetWorker
	// Campaign returns the coordinator's campaign progress, nil outside a
	// run. Optional.
	Campaign func() *api.FleetCampaign
	// NewClient overrides worker client construction (tests); nil builds
	// faultdclient.New over Transport.
	NewClient func(url string) *faultdclient.Client
	// Transport, when set, underlies every scrape — under a netchaos plan
	// the fleet plane suffers the weather like everything else. Ignored by a
	// NewClient override.
	Transport http.RoundTripper
	// Hub, when set, receives a "fleet" StreamEvent carrying the snapshot
	// after every scrape round.
	Hub *obs.Hub
	// Log receives scrape diagnostics; nil discards them.
	Log *slog.Logger
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return DefaultInterval
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return DefaultTimeout
}

// workerScrape is the plane's retained view of one worker: the latest
// readiness verdict and the last successfully fetched metrics snapshot.
type workerScrape struct {
	ready bool
	stale bool
	snap  *metrics.Snapshot
}

// Plane is the fleet telemetry plane. Build with New; drive with Run (or
// ScrapeOnce for one-shot use); read with Snapshot.
type Plane struct {
	cfg Config
	log *slog.Logger

	// Operator instruments: scrape traffic and failures are process-local
	// telemetry about the plane itself and deliberately live outside the
	// snapshot document, which must stay a pure function of fleet state.
	reg        *metrics.Registry
	scrapes    *metrics.Counter
	scrapeErrs *metrics.Counter
	staleG     *metrics.Gauge

	mu      sync.Mutex
	scraped map[string]*workerScrape
}

// New builds a plane over the given config.
func New(cfg Config) *Plane {
	log := cfg.Log
	if log == nil {
		log = obs.Nop()
	}
	p := &Plane{
		cfg: cfg,
		log: log,
		reg: metrics.NewRegistry(),
		scrapes: metrics.NewCounter("fleet_scrapes_total",
			"Worker scrapes attempted by the fleet plane."),
		scrapeErrs: metrics.NewCounter("fleet_scrape_errors_total",
			"Worker scrapes that failed (readyz or metrics fetch)."),
		staleG: metrics.NewGauge("fleet_workers_stale",
			"Workers serving their last good snapshot after a failed scrape."),
		scraped: map[string]*workerScrape{},
	}
	p.reg.MustRegister(metrics.OmitZero(p.scrapes),
		metrics.OmitZero(p.scrapeErrs), metrics.OmitZero(p.staleG))
	return p
}

// client builds the scrape client for one worker.
func (p *Plane) client(url string) *faultdclient.Client {
	if p.cfg.NewClient != nil {
		return p.cfg.NewClient(url)
	}
	return faultdclient.New(url).WithTransport(p.cfg.Transport)
}

// Run scrapes the fleet on the interval until ctx ends, publishing a "fleet"
// event on the hub after each round. The first round runs immediately so a
// dashboard attached at campaign start is not blind for a full interval.
func (p *Plane) Run(ctx context.Context) {
	t := time.NewTicker(p.cfg.interval())
	defer t.Stop()
	for {
		p.ScrapeOnce(ctx)
		if p.cfg.Hub != nil {
			p.cfg.Hub.Publish(obs.StreamEvent{Type: "fleet", Data: p.Snapshot()})
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// ScrapeOnce runs one scrape round: every registered worker's /readyz and
// /v1/metrics fetched concurrently, so one black-holed worker cannot stall
// the round past its own timeout.
func (p *Plane) ScrapeOnce(ctx context.Context) {
	rows := p.cfg.Workers()
	var wg sync.WaitGroup
	for _, row := range rows {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			p.scrapeWorker(ctx, url)
		}(row.URL)
	}
	wg.Wait()

	p.mu.Lock()
	stale := 0
	for _, ws := range p.scraped {
		if ws.stale {
			stale++
		}
	}
	p.mu.Unlock()
	p.staleG.Set(float64(stale))
}

// scrapeWorker fetches one worker's readiness and metrics and folds the
// verdict into the retained state.
func (p *Plane) scrapeWorker(ctx context.Context, url string) {
	p.scrapes.Inc()
	sctx, cancel := context.WithTimeout(ctx, p.cfg.timeout())
	defer cancel()
	cl := p.client(url)
	snap, err := cl.Metrics(sctx)
	ready := err == nil && cl.Ready(sctx, false, false) == nil

	p.mu.Lock()
	defer p.mu.Unlock()
	ws := p.scraped[url]
	if err != nil {
		p.scrapeErrs.Inc()
		if ws != nil {
			// Keep the last good snapshot, flagged as aging.
			ws.ready = false
			ws.stale = true
		}
		p.log.Debug("fleet scrape failed", "worker", url, "err", err)
		return
	}
	if ws == nil {
		ws = &workerScrape{}
		p.scraped[url] = ws
	}
	ws.ready = ready
	ws.stale = false
	ws.snap = snap
}

// Snapshot renders the fleet document: the registry rows with scrape-derived
// fields filled in, the campaign progress, and the order-stable merge of
// every scraped worker's metrics in worker-URL order. A pure function of the
// plane's retained state — calling it twice without an intervening scrape
// returns byte-identical documents.
func (p *Plane) Snapshot() *api.FleetSnapshot {
	rows := p.cfg.Workers()
	fs := &api.FleetSnapshot{Workers: rows}
	if fs.Workers == nil {
		fs.Workers = []api.FleetWorker{}
	}
	p.mu.Lock()
	var merged *metrics.Snapshot
	for i := range fs.Workers {
		ws := p.scraped[fs.Workers[i].URL]
		if ws == nil {
			continue
		}
		fs.Workers[i].Ready = ws.ready
		fs.Workers[i].Stale = ws.stale
		if ws.snap == nil {
			continue
		}
		if merged == nil {
			merged = &metrics.Snapshot{}
		}
		if err := merged.Merge(ws.snap); err != nil {
			// Incompatible layouts across workers (skewed binaries): serve
			// the rows, drop the merge, and say so.
			p.log.Warn("fleet metrics merge failed", "worker", fs.Workers[i].URL, "err", err)
		}
	}
	p.mu.Unlock()
	fs.Metrics = merged
	if p.cfg.Campaign != nil {
		fs.Campaign = p.cfg.Campaign()
	}
	return fs
}

// Gather returns the plane's own operator instruments (fleet_* families) for
// merging into the coordinator's /metrics exposition.
func (p *Plane) Gather() (*metrics.Snapshot, error) {
	return p.reg.Gather()
}
