package fleetobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
	"dmafault/internal/metrics"
)

// fixedWorker serves a frozen /v1/metrics body and a ready /readyz — the
// "identical worker state" the determinism contract is pinned against. A
// live dmafaultd cannot play this role: its request counter ticks on every
// scrape, so consecutive scrapes never observe identical state.
func fixedWorker(t *testing.T, metricsBody string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/metrics":
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, metricsBody)
		case "/readyz":
			fmt.Fprintln(w, "ready")
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func fixedMetricsBody(t *testing.T, name string, value float64) string {
	t.Helper()
	snap := &metrics.Snapshot{Families: []metrics.Family{{
		Name: name, Kind: metrics.KindCounter,
		Samples: []metrics.Sample{{Value: value}},
	}}}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// noRetryClient builds a scrape client with retries disabled so tests that
// point at dead endpoints fail fast instead of riding the backoff curve.
func noRetryClient(url string) *faultdclient.Client {
	c := faultdclient.New(url)
	c.Retries = -1
	return c
}

// registryRows adapts a fixed registry view to Config.Workers.
func registryRows(rows []api.FleetWorker) func() []api.FleetWorker {
	return func() []api.FleetWorker {
		out := make([]api.FleetWorker, len(rows))
		copy(out, rows)
		return out
	}
}

// Two scrapes of identical worker state must produce byte-identical
// /v1/fleet documents: the snapshot is a pure function of fleet state, with
// scrape jitter and plane-internal counters kept out of the bytes.
func TestSnapshotDeterministicAcrossScrapes(t *testing.T) {
	w1 := fixedWorker(t, fixedMetricsBody(t, "faultd_requests_total", 7))
	w2 := fixedWorker(t, fixedMetricsBody(t, "faultd_requests_total", 3))
	rows := []api.FleetWorker{
		{URL: w1.URL, Up: true, Static: true, Delivered: 2, Scenarios: 8,
			PhaseTotals:      api.PhaseSeconds{QueueWait: 0.1, Execute: 2, Publish: 0.01},
			EWMAShardSeconds: 1, EWMAScenariosPerSec: 4},
		{URL: w2.URL, Up: true, Delivered: 1, Scenarios: 4,
			PhaseTotals:      api.PhaseSeconds{Execute: 1.5},
			EWMAShardSeconds: 1.5, EWMAScenariosPerSec: 2.7},
	}
	p := New(Config{Workers: registryRows(rows)})
	ctx := context.Background()

	p.ScrapeOnce(ctx)
	a, err := json.MarshalIndent(p.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	p.ScrapeOnce(ctx)
	b, err := json.MarshalIndent(p.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("re-scraped snapshot drifted:\n%s\nvs\n%s", a, b)
	}

	var fs api.FleetSnapshot
	if err := json.Unmarshal(a, &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Workers) != 2 || !fs.Workers[0].Ready || !fs.Workers[1].Ready {
		t.Fatalf("workers not ready after scrape: %+v", fs.Workers)
	}
	// The merged metrics sum both workers' frozen counters, worker-URL order.
	if fs.Metrics == nil || fs.Metrics.Total("faultd_requests_total") != 10 {
		t.Fatalf("merged metrics: %+v", fs.Metrics)
	}
}

// A worker whose scrape starts failing goes stale and keeps serving its last
// good snapshot; one that never answered contributes nothing and stays
// unready.
func TestStalenessSemantics(t *testing.T) {
	healthy := true
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy {
			http.Error(w, "gone", http.StatusBadGateway)
			return
		}
		switch r.URL.Path {
		case "/v1/metrics":
			fmt.Fprint(w, fixedMetricsBody(t, "faultd_requests_total", 5))
		case "/readyz":
			fmt.Fprintln(w, "ready")
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	rows := []api.FleetWorker{
		{URL: "http://dead.invalid:1", Up: false},
		{URL: ts.URL, Up: true},
	}
	// The dead worker must fail fast, not ride the full retry curve.
	p := New(Config{Workers: registryRows(rows), NewClient: noRetryClient})
	ctx := context.Background()

	p.ScrapeOnce(ctx)
	fs := p.Snapshot()
	if fs.Workers[0].URL != ts.URL { // URL-sorted: httptest URL sorts first
		fs.Workers[0], fs.Workers[1] = fs.Workers[1], fs.Workers[0]
	}
	live, dead := fs.Workers[0], fs.Workers[1]
	if !live.Ready || live.Stale {
		t.Fatalf("live worker: %+v", live)
	}
	if dead.Ready || dead.Stale {
		t.Fatalf("never-scraped worker must be unready and not stale: %+v", dead)
	}
	if fs.Metrics.Total("faultd_requests_total") != 5 {
		t.Fatalf("metrics: %+v", fs.Metrics)
	}

	// The live worker dies: its row goes stale, its last snapshot persists.
	healthy = false
	p.ScrapeOnce(ctx)
	fs = p.Snapshot()
	if fs.Workers[0].URL != ts.URL {
		fs.Workers[0], fs.Workers[1] = fs.Workers[1], fs.Workers[0]
	}
	gone := fs.Workers[0]
	if gone.Ready || !gone.Stale {
		t.Fatalf("dead-after-success worker: %+v", gone)
	}
	if fs.Metrics.Total("faultd_requests_total") != 5 {
		t.Fatalf("stale snapshot not retained: %+v", fs.Metrics)
	}
}

// The golden document: a quarantined worker and a dead (never-scraped)
// worker, with fixed URLs and a frozen scrape state seeded directly. This is
// the byte-exact /v1/fleet wire format; a field rename or ordering change
// fails here before it breaks fabrictop.
func TestFleetSnapshotGolden(t *testing.T) {
	rows := []api.FleetWorker{
		{URL: "http://w1:8077", Up: true, Static: true, Quarantined: true,
			Leases: 1, Delivered: 2, Scenarios: 8, CacheHits: 3,
			PhaseTotals:      api.PhaseSeconds{QueueWait: 0.25, Execute: 4, Publish: 0.5},
			EWMAShardSeconds: 2, EWMAScenariosPerSec: 2.5},
		{URL: "http://w2:8077", Up: false, Static: true},
	}
	p := New(Config{
		Workers: registryRows(rows),
		Campaign: func() *api.FleetCampaign {
			return &api.FleetCampaign{ScenariosTotal: 16, ScenariosDone: 8,
				ShardsTotal: 4, ShardsDone: 2}
		},
	})
	// Seed the frozen scrape state: w1 answered once then went dark (stale,
	// last snapshot retained); w2 never answered at all.
	p.scraped["http://w1:8077"] = &workerScrape{
		ready: false, stale: true,
		snap: &metrics.Snapshot{Families: []metrics.Family{{
			Name: "faultd_requests_total", Kind: metrics.KindCounter,
			Samples: []metrics.Sample{{Value: 42}},
		}}},
	}

	got, err := json.MarshalIndent(p.Snapshot(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want := `{
  "workers": [
    {
      "url": "http://w1:8077",
      "up": true,
      "static": true,
      "quarantined": true,
      "leases": 1,
      "delivered_shards": 2,
      "delivered_scenarios": 8,
      "cache_hits": 3,
      "phase_totals": {
        "queue_wait_seconds": 0.25,
        "execute_seconds": 4,
        "publish_seconds": 0.5
      },
      "ewma_shard_seconds": 2,
      "ewma_scenarios_per_sec": 2.5,
      "ready": false,
      "stale": true
    },
    {
      "url": "http://w2:8077",
      "up": false,
      "static": true,
      "leases": 0,
      "delivered_shards": 0,
      "delivered_scenarios": 0,
      "phase_totals": {
        "queue_wait_seconds": 0,
        "execute_seconds": 0,
        "publish_seconds": 0
      },
      "ewma_shard_seconds": 0,
      "ewma_scenarios_per_sec": 0,
      "ready": false
    }
  ],
  "campaign": {
    "scenarios_total": 16,
    "scenarios_done": 8,
    "shards_total": 4,
    "shards_done": 2
  },
  "metrics": {
    "families": [
      {
        "name": "faultd_requests_total",
        "kind": "counter",
        "samples": [
          {
            "value": 42
          }
        ]
      }
    ]
  }
}`
	if string(got) != want {
		t.Errorf("fleet snapshot wire format drifted:\n got %s\nwant %s", got, want)
	}
}
