package iommu

import (
	"testing"

	"dmafault/internal/layout"
	"dmafault/internal/sim"
)

func TestSetFlushPolicyTimeout(t *testing.T) {
	u, _, clk := newUnit(t, Deferred)
	u.SetFlushPolicy(2*sim.Millisecond, 0)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, v, true); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, v); err != nil {
		t.Fatal(err)
	}
	clk.Advance(1 * sim.Millisecond)
	if _, err := u.Translate(nicDev, v, true); err != nil {
		t.Fatal("window closed before the shortened timeout")
	}
	clk.Advance(1*sim.Millisecond + 1)
	if _, err := u.Translate(nicDev, v, true); err == nil {
		t.Fatal("shortened timeout not honored")
	}
}

func TestSetFlushPolicyQueueLimit(t *testing.T) {
	u, d, _ := newUnit(t, Deferred)
	u.SetFlushPolicy(0, 4)
	for i := 0; i < 4; i++ {
		v := IOVA(iovaBase) + IOVA(i*layout.PageSize)
		if err := u.Map(nicDev, v, layout.PFN(i+1), PermRead); err != nil {
			t.Fatal(err)
		}
		if err := u.Unmap(nicDev, v); err != nil {
			t.Fatal(err)
		}
	}
	if d.PendingInvalidations() != 0 {
		t.Errorf("queue not flushed at the custom limit: %d pending", d.PendingInvalidations())
	}
	if u.Stats().GlobalFlushes != 1 {
		t.Errorf("GlobalFlushes = %d", u.Stats().GlobalFlushes)
	}
}

func TestOnFaultHook(t *testing.T) {
	u, _, _ := newUnit(t, Strict)
	var got *Fault
	u.OnFault = func(f *Fault) { got = f }
	if _, err := u.Translate(nicDev, iovaBase, false); err == nil {
		t.Fatal("unmapped translate succeeded")
	}
	if got == nil || got.Dev != nicDev || got.Perm != PermNone {
		t.Errorf("fault hook got %+v", got)
	}
}
