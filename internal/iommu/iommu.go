// Package iommu simulates an input–output memory management unit in the
// style of Intel VT-d: per-device protection domains, a 4-level I/O page
// table with page-granularity READ/WRITE/BIDIRECTIONAL rights, an IOTLB, and
// the two invalidation policies Linux offers (§5.2.1 of the paper):
//
//   - strict: the IOTLB entry is invalidated synchronously on every unmap,
//     at a cost of ≈2000 cycles per invalidation;
//   - deferred (the Linux default): unmapped IOVAs are queued and the whole
//     IOTLB is flushed globally when the queue fills or a 10 ms timeout
//     expires — leaving a window during which the device still translates,
//     and therefore still accesses, pages the OS believes are revoked.
//
// The package enforces exactly what real IOMMU hardware enforces — and
// nothing more. In particular, protection is page-granular, which is the
// sub-page vulnerability the whole paper is about.
package iommu

import (
	"fmt"
	"sort"

	"dmafault/internal/layout"
	"dmafault/internal/sim"
)

// DeviceID identifies a DMA requester (a PCI BDF in real hardware).
type DeviceID uint16

// Mode selects the invalidation policy.
type Mode int

const (
	// Deferred batches IOTLB invalidations (Linux default, §5.2.1).
	Deferred Mode = iota
	// Strict invalidates the IOTLB on every unmap.
	Strict
)

// String names the mode as Linux's intel_iommu= option does.
func (m Mode) String() string {
	if m == Strict {
		return "strict"
	}
	return "deferred"
}

// Invalidation policy constants per §5.2.1.
const (
	// InvalidationCost is the virtual-time cost of one IOTLB invalidation
	// (≈2000 cycles).
	InvalidationCost = sim.Nanos(2000 / sim.CPUFrequencyGHz)
	// DeferredTimeout is how long an unmapped entry may linger before the
	// periodic global flush ("may be as high as 10 milliseconds").
	DeferredTimeout = 10 * sim.Millisecond
	// DeferredQueueLimit forces a global flush when this many unmaps are
	// pending (Linux's flush-queue depth).
	DeferredQueueLimit = 256
)

// Stats aggregates IOMMU activity.
type Stats struct {
	Maps, Unmaps, Translations, Faults uint64
	StrictInvalidations                uint64
	GlobalFlushes                      uint64
	InvalidationTime                   sim.Nanos
	StaleHits                          uint64 // translations served from a stale IOTLB entry
}

// Fault describes a blocked DMA access.
type Fault struct {
	Dev   DeviceID
	Addr  IOVA
	Write bool
	Perm  Perm // permissions found (PermNone if untranslated)
}

// Error implements error.
func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	if f.Perm == PermNone {
		return fmt.Sprintf("iommu: fault: device %d %s at IOVA %#x: not present", f.Dev, kind, uint64(f.Addr))
	}
	return fmt.Sprintf("iommu: fault: device %d %s at IOVA %#x: permission %s", f.Dev, kind, uint64(f.Addr), f.Perm)
}

// Domain is one protection domain: a page table, an IOTLB, and an IOVA
// allocator. Several devices may share a domain (the paper's FireWire
// attacker shares the NIC's page table, §6).
type Domain struct {
	name  string
	table *PageTable
	tlb   *IOTLB
	iova  *iovaAllocator
	// reverse maps pfn -> live IOVA pages mapping it, for type (c) queries.
	reverse map[layout.PFN][]IOVA
	// flushQueue holds IOVAs unmapped but not yet invalidated (deferred).
	flushQueue    []IOVA
	flushDeadline sim.Nanos
	// pendingIOVA holds address ranges whose reuse must wait for the next
	// flush: recycling them earlier would let a stale IOTLB entry alias a
	// fresh mapping. Linux's IOVA allocator defers frees the same way.
	pendingIOVA []pendingRange
}

type pendingRange struct {
	v IOVA
	n uint64
}

// IOMMU is the unit: domains, the invalidation policy, and a clock.
type IOMMU struct {
	mode    Mode
	clock   *sim.Clock
	domains map[DeviceID]*Domain
	all     []*Domain
	stats   Stats
	// flushTimeout and flushQueueLimit are the deferred-mode batching
	// parameters (defaults: DeferredTimeout, DeferredQueueLimit). They are
	// the D1 ablation knobs: smaller values shrink the attack window and
	// raise the per-unmap cost.
	flushTimeout    sim.Nanos
	flushQueueLimit int
	// OnFault, if set, observes every blocked translation (tracing; a real
	// IOMMU raises a fault interrupt the OS logs).
	OnFault func(*Fault)
	// Inject, if set, is the fault-injection hook consulted on every
	// translation: it may stall the device (advancing the virtual clock,
	// which can carry a deferred-flush deadline past its window) or force a
	// spurious not-present fault. internal/faultinject implements it; the
	// interface lives here so this package stays dependency-free.
	Inject Injector
}

// Injector is the translation-time fault-injection hook.
type Injector interface {
	InjectTranslate(dev DeviceID, v IOVA, write bool) (stall sim.Nanos, spurious bool)
}

// New builds an IOMMU in the given mode using the shared virtual clock.
func New(mode Mode, clock *sim.Clock) *IOMMU {
	return &IOMMU{
		mode:            mode,
		clock:           clock,
		domains:         make(map[DeviceID]*Domain),
		flushTimeout:    DeferredTimeout,
		flushQueueLimit: DeferredQueueLimit,
	}
}

// SetFlushPolicy overrides the deferred-mode batching parameters (pending
// work is flushed first so the change is clean).
func (u *IOMMU) SetFlushPolicy(timeout sim.Nanos, queueLimit int) {
	u.FlushSync()
	if timeout > 0 {
		u.flushTimeout = timeout
	}
	if queueLimit > 0 {
		u.flushQueueLimit = queueLimit
	}
}

// Mode returns the invalidation policy.
func (u *IOMMU) Mode() Mode { return u.mode }

// SetMode switches the invalidation policy (boot-time option in Linux; we
// allow switching between experiments after a sync flush).
func (u *IOMMU) SetMode(m Mode) {
	u.FlushSync()
	u.mode = m
}

// Stats returns a copy of the counters.
func (u *IOMMU) Stats() Stats { return u.stats }

// CreateDomain allocates a fresh protection domain and attaches the device.
func (u *IOMMU) CreateDomain(name string, dev DeviceID) (*Domain, error) {
	if _, ok := u.domains[dev]; ok {
		return nil, fmt.Errorf("iommu: device %d already attached", dev)
	}
	d := &Domain{
		name:    name,
		table:   &PageTable{},
		tlb:     NewIOTLB(0),
		iova:    newIOVAAllocator(),
		reverse: make(map[layout.PFN][]IOVA),
	}
	u.domains[dev] = d
	u.all = append(u.all, d)
	return d, nil
}

// AttachDevice attaches an additional device to an existing domain, giving it
// the exact same view of memory (the FireWire-shares-the-NIC's-table setup
// of §6).
func (u *IOMMU) AttachDevice(dev DeviceID, d *Domain) error {
	if _, ok := u.domains[dev]; ok {
		return fmt.Errorf("iommu: device %d already attached", dev)
	}
	u.domains[dev] = d
	return nil
}

// DomainOf returns the domain a device is attached to.
func (u *IOMMU) DomainOf(dev DeviceID) (*Domain, error) {
	d, ok := u.domains[dev]
	if !ok {
		return nil, fmt.Errorf("iommu: device %d not attached to any domain", dev)
	}
	return d, nil
}

// Map installs a translation in the device's domain and returns nothing the
// hardware wouldn't: the caller (the DMA API) chose the IOVA.
func (u *IOMMU) Map(dev DeviceID, v IOVA, pfn layout.PFN, perm Perm) error {
	d, err := u.DomainOf(dev)
	if err != nil {
		return err
	}
	if err := d.table.Map(v, pfn, perm); err != nil {
		return err
	}
	d.reverse[pfn] = append(d.reverse[pfn], key(v))
	u.stats.Maps++
	return nil
}

// Unmap removes a translation. Under strict mode the IOTLB entry dies with
// it (2000-cycle cost); under deferred mode the entry is only queued, and the
// device retains access until the next global flush — the Fig. 6 window.
func (u *IOMMU) Unmap(dev DeviceID, v IOVA) error {
	d, err := u.DomainOf(dev)
	if err != nil {
		return err
	}
	pfn, _, err := d.table.Unmap(v)
	if err != nil {
		return err
	}
	u.removeReverse(d, pfn, key(v))
	u.stats.Unmaps++
	switch u.mode {
	case Strict:
		d.tlb.Invalidate(v)
		u.clock.Advance(InvalidationCost)
		u.stats.StrictInvalidations++
		u.stats.InvalidationTime += InvalidationCost
	case Deferred:
		if len(d.flushQueue) == 0 {
			d.flushDeadline = u.clock.Now() + u.flushTimeout
		}
		d.flushQueue = append(d.flushQueue, key(v))
		if len(d.flushQueue) >= u.flushQueueLimit {
			u.flushDomain(d)
		}
	}
	return nil
}

func (u *IOMMU) removeReverse(d *Domain, pfn layout.PFN, k IOVA) {
	list := d.reverse[pfn]
	for i, x := range list {
		if x == k {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(d.reverse, pfn)
	} else {
		d.reverse[pfn] = list
	}
}

// ReleaseIOVA returns address space to the domain's allocator — immediately
// under strict mode, or after the next global flush under deferred mode (so
// a stale IOTLB entry can never alias a recycled IOVA).
func (u *IOMMU) ReleaseIOVA(dev DeviceID, v IOVA, n uint64) error {
	d, err := u.DomainOf(dev)
	if err != nil {
		return err
	}
	if u.mode == Deferred {
		d.pendingIOVA = append(d.pendingIOVA, pendingRange{v, n})
		return nil
	}
	return d.iova.free(v, n)
}

// flushDomain performs the periodic global invalidation of deferred mode.
func (u *IOMMU) flushDomain(d *Domain) {
	if len(d.flushQueue) == 0 && len(d.pendingIOVA) == 0 {
		return
	}
	d.tlb.FlushAll()
	d.flushQueue = d.flushQueue[:0]
	for _, p := range d.pendingIOVA {
		_ = d.iova.free(p.v, p.n)
	}
	d.pendingIOVA = d.pendingIOVA[:0]
	u.clock.Advance(InvalidationCost) // one global invalidation command
	u.stats.InvalidationTime += InvalidationCost
	u.stats.GlobalFlushes++
}

// Tick runs the deferred-flush timer against the current virtual time. The
// simulation calls it whenever time advances.
func (u *IOMMU) Tick() {
	if u.mode != Deferred {
		return
	}
	now := u.clock.Now()
	for _, d := range u.all {
		if len(d.flushQueue) > 0 && now >= d.flushDeadline {
			u.flushDomain(d)
		}
	}
}

// FlushSync forces all pending invalidations out, in every domain.
func (u *IOMMU) FlushSync() {
	for _, d := range u.all {
		u.flushDomain(d)
	}
}

// Translate performs a device access check: IOTLB first, then the page
// table. A hit in the IOTLB is authoritative to the hardware even if the
// page table entry has since been removed — that is the stale-entry behaviour
// the deferred mode exposes. Faults return *Fault.
func (u *IOMMU) Translate(dev DeviceID, v IOVA, write bool) (layout.PFN, error) {
	u.Tick()
	d, err := u.DomainOf(dev)
	if err != nil {
		return 0, err
	}
	u.stats.Translations++
	if u.Inject != nil {
		stall, spurious := u.Inject.InjectTranslate(dev, v, write)
		if stall > 0 {
			// The device is stalled, not the OS: deferred-flush deadlines
			// keep running, so re-check them after the delay.
			u.clock.Advance(stall)
			u.Tick()
		}
		if spurious {
			return 0, u.fault(&Fault{Dev: dev, Addr: v, Write: write, Perm: PermNone})
		}
	}
	if pfn, perm, ok := d.tlb.Lookup(v); ok {
		if !perm.Allows(write) {
			return 0, u.fault(&Fault{Dev: dev, Addr: v, Write: write, Perm: perm})
		}
		if _, _, present := d.table.Walk(v); !present {
			u.stats.StaleHits++
		}
		return pfn, nil
	}
	pfn, perm, ok := d.table.Walk(v)
	if !ok {
		return 0, u.fault(&Fault{Dev: dev, Addr: v, Write: write, Perm: PermNone})
	}
	d.tlb.Insert(v, pfn, perm)
	if !perm.Allows(write) {
		return 0, u.fault(&Fault{Dev: dev, Addr: v, Write: write, Perm: perm})
	}
	return pfn, nil
}

// fault counts and reports a blocked translation.
func (u *IOMMU) fault(f *Fault) *Fault {
	u.stats.Faults++
	if u.OnFault != nil {
		u.OnFault(f)
	}
	return f
}

// Domain accessors used by the DMA layer and by tests.

// Name returns the domain's label.
func (d *Domain) Name() string { return d.name }

// AllocIOVA reserves n page-aligned bytes of I/O virtual address space.
func (d *Domain) AllocIOVA(n uint64) (IOVA, error) { return d.iova.alloc(n) }

// FreeIOVA releases address space reserved by AllocIOVA.
func (d *Domain) FreeIOVA(v IOVA, n uint64) error { return d.iova.free(v, n) }

// IOVAsFor lists the live IOVA pages that map the frame in this domain,
// sorted. More than one element means a type (c) sub-page condition: the
// device can reach the frame through a second translation even after the
// first is unmapped and flushed (§5.2.2 path iii).
func (d *Domain) IOVAsFor(pfn layout.PFN) []IOVA {
	list := append([]IOVA(nil), d.reverse[pfn]...)
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	return list
}

// PendingInvalidations returns how many unmapped IOVAs still await a flush.
func (d *Domain) PendingInvalidations() int { return len(d.flushQueue) }

// TLB exposes the domain's IOTLB for stats and white-box tests.
func (d *Domain) TLB() *IOTLB { return d.tlb }

// Table exposes the domain's page table for white-box tests.
func (d *Domain) Table() *PageTable { return d.table }

// iovaAllocator hands out page-aligned IOVA ranges. Like Linux's allocator
// it reuses freed ranges (keeping IOVA space compact and making "the IOVA of
// the next buffer" predictable, which type (c) attacks rely on).
type iovaAllocator struct {
	next  IOVA
	freed map[uint64][]IOVA // size class (pages) -> freed ranges, LIFO
}

// iovaBase is where device address space starts; above 4 GiB like Linux's
// default DMA window for 64-bit devices, and never 0 so that a nil IOVA is
// distinguishable.
const iovaBase IOVA = 1 << 32

func newIOVAAllocator() *iovaAllocator {
	return &iovaAllocator{next: iovaBase, freed: make(map[uint64][]IOVA)}
}

func (a *iovaAllocator) alloc(n uint64) (IOVA, error) {
	if n == 0 {
		return 0, fmt.Errorf("iommu: zero-length IOVA allocation")
	}
	pages := layout.PageAlignUp(n) / layout.PageSize
	if list := a.freed[pages]; len(list) > 0 {
		v := list[len(list)-1]
		a.freed[pages] = list[:len(list)-1]
		return v, nil
	}
	v := a.next
	a.next += IOVA(pages * layout.PageSize)
	if a.next>>48 != 0 {
		return 0, fmt.Errorf("iommu: IOVA space exhausted")
	}
	return v, nil
}

func (a *iovaAllocator) free(v IOVA, n uint64) error {
	if v < iovaBase || uint64(v)&layout.PageMask != 0 {
		return fmt.Errorf("iommu: bad IOVA free %#x", uint64(v))
	}
	pages := layout.PageAlignUp(n) / layout.PageSize
	a.freed[pages] = append(a.freed[pages], v)
	return nil
}
