package iommu

import (
	"errors"
	"testing"

	"dmafault/internal/layout"
	"dmafault/internal/sim"
)

const (
	nicDev      DeviceID = 1
	firewireDev DeviceID = 2
)

func newUnit(t *testing.T, mode Mode) (*IOMMU, *Domain, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock()
	u := New(mode, clk)
	d, err := u.CreateDomain("nic", nicDev)
	if err != nil {
		t.Fatal(err)
	}
	return u, d, clk
}

func TestDomainAttachment(t *testing.T) {
	u, d, _ := newUnit(t, Strict)
	if _, err := u.CreateDomain("again", nicDev); err == nil {
		t.Error("double attach via CreateDomain accepted")
	}
	if err := u.AttachDevice(firewireDev, d); err != nil {
		t.Fatal(err)
	}
	if err := u.AttachDevice(firewireDev, d); err == nil {
		t.Error("double AttachDevice accepted")
	}
	got, err := u.DomainOf(firewireDev)
	if err != nil || got != d {
		t.Error("shared domain lookup failed")
	}
	if _, err := u.DomainOf(DeviceID(99)); err == nil {
		t.Error("unattached device resolved")
	}
	if d.Name() != "nic" {
		t.Errorf("Name = %q", d.Name())
	}
}

func TestTranslatePermissions(t *testing.T) {
	u, _, _ := newUnit(t, Strict)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 100, PermWrite); err != nil {
		t.Fatal(err)
	}
	if pfn, err := u.Translate(nicDev, v+16, true); err != nil || pfn != 100 {
		t.Fatalf("write translate = %d, %v", pfn, err)
	}
	// WRITE does not grant READ (§2.2).
	_, err := u.Translate(nicDev, v, false)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("read through WRITE mapping: err = %v, want Fault", err)
	}
	if f.Perm != PermWrite || f.Write {
		t.Errorf("fault details: %+v", f)
	}
	// Unmapped IOVA faults with PermNone.
	_, err = u.Translate(nicDev, v+layout.PageSize, false)
	if !errors.As(err, &f) || f.Perm != PermNone {
		t.Errorf("unmapped fault = %v", err)
	}
	if u.Stats().Faults != 2 {
		t.Errorf("Faults = %d", u.Stats().Faults)
	}
}

func TestSharedDomainSharesView(t *testing.T) {
	// §6: the FireWire attacker shares the NIC's page table and can access
	// everything the NIC can.
	u, d, _ := newUnit(t, Strict)
	if err := u.AttachDevice(firewireDev, d); err != nil {
		t.Fatal(err)
	}
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 55, PermBidir); err != nil {
		t.Fatal(err)
	}
	pfn, err := u.Translate(firewireDev, v, true)
	if err != nil || pfn != 55 {
		t.Fatalf("firewire access through shared domain = %d, %v", pfn, err)
	}
}

func TestStrictUnmapRevokesImmediately(t *testing.T) {
	u, _, clk := newUnit(t, Strict)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, v, true); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := u.Unmap(nicDev, v); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-before != InvalidationCost {
		t.Errorf("strict unmap cost %d ns, want %d", clk.Now()-before, InvalidationCost)
	}
	if _, err := u.Translate(nicDev, v, true); err == nil {
		t.Error("access succeeded after strict unmap")
	}
	if u.Stats().StaleHits != 0 {
		t.Error("strict mode recorded stale hits")
	}
}

func TestDeferredWindowAllowsStaleAccess(t *testing.T) {
	// Fig. 6: in deferred mode, between unmap and the periodic flush the
	// device still translates through the stale IOTLB entry.
	u, d, clk := newUnit(t, Deferred)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, v, true); err != nil { // prime the IOTLB
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, v); err != nil {
		t.Fatal(err)
	}
	if d.PendingInvalidations() != 1 {
		t.Fatalf("PendingInvalidations = %d", d.PendingInvalidations())
	}
	// Still accessible: the stale window.
	pfn, err := u.Translate(nicDev, v, true)
	if err != nil || pfn != 7 {
		t.Fatalf("stale access = %d, %v", pfn, err)
	}
	if u.Stats().StaleHits != 1 {
		t.Errorf("StaleHits = %d", u.Stats().StaleHits)
	}
	// After the 10 ms timeout the periodic flush closes the window.
	clk.Advance(DeferredTimeout + 1)
	if _, err := u.Translate(nicDev, v, true); err == nil {
		t.Error("stale access succeeded after deferred timeout")
	}
	if u.Stats().GlobalFlushes != 1 {
		t.Errorf("GlobalFlushes = %d", u.Stats().GlobalFlushes)
	}
}

func TestDeferredUnprimedTLBFaults(t *testing.T) {
	// If the device never translated the IOVA before the unmap, there is no
	// stale entry and deferred mode still faults.
	u, _, _ := newUnit(t, Deferred)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, v); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, v, true); err == nil {
		t.Error("access succeeded without stale entry")
	}
}

func TestDeferredQueueLimitFlush(t *testing.T) {
	u, d, _ := newUnit(t, Deferred)
	for i := 0; i < DeferredQueueLimit; i++ {
		v := IOVA(iovaBase) + IOVA(i*layout.PageSize)
		if err := u.Map(nicDev, v, layout.PFN(i+1), PermRead); err != nil {
			t.Fatal(err)
		}
		if err := u.Unmap(nicDev, v); err != nil {
			t.Fatal(err)
		}
	}
	if d.PendingInvalidations() != 0 {
		t.Errorf("queue not flushed at limit: %d pending", d.PendingInvalidations())
	}
	if u.Stats().GlobalFlushes != 1 {
		t.Errorf("GlobalFlushes = %d", u.Stats().GlobalFlushes)
	}
}

func TestSetModeFlushesFirst(t *testing.T) {
	u, d, _ := newUnit(t, Deferred)
	v := IOVA(iovaBase)
	if err := u.Map(nicDev, v, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, v, true); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, v); err != nil {
		t.Fatal(err)
	}
	u.SetMode(Strict)
	if d.PendingInvalidations() != 0 {
		t.Error("mode switch left pending invalidations")
	}
	if _, err := u.Translate(nicDev, v, true); err == nil {
		t.Error("stale access after mode switch")
	}
	if u.Mode() != Strict {
		t.Error("mode not switched")
	}
}

func TestReverseMapTracksMultipleIOVAs(t *testing.T) {
	// Type (c): one frame mapped by two IOVAs.
	u, d, _ := newUnit(t, Strict)
	v1, v2 := IOVA(iovaBase), IOVA(iovaBase+layout.PageSize)
	if err := u.Map(nicDev, v1, 33, PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := u.Map(nicDev, v2, 33, PermWrite); err != nil {
		t.Fatal(err)
	}
	list := d.IOVAsFor(33)
	if len(list) != 2 || list[0] != v1 || list[1] != v2 {
		t.Fatalf("IOVAsFor = %v", list)
	}
	if err := u.Unmap(nicDev, v1); err != nil {
		t.Fatal(err)
	}
	// The frame is still reachable through the second IOVA even in strict
	// mode — §5.2.2 path (iii).
	if pfn, err := u.Translate(nicDev, v2, true); err != nil || pfn != 33 {
		t.Fatalf("second-IOVA access = %d, %v", pfn, err)
	}
	if got := d.IOVAsFor(33); len(got) != 1 || got[0] != v2 {
		t.Fatalf("IOVAsFor after unmap = %v", got)
	}
	if err := u.Unmap(nicDev, v2); err != nil {
		t.Fatal(err)
	}
	if got := d.IOVAsFor(33); len(got) != 0 {
		t.Fatalf("IOVAsFor after full unmap = %v", got)
	}
}

func TestIOVAAllocator(t *testing.T) {
	_, d, _ := newUnit(t, Strict)
	a, err := d.AllocIOVA(100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)&layout.PageMask != 0 {
		t.Errorf("IOVA %#x not page aligned", uint64(a))
	}
	b, err := d.AllocIOVA(layout.PageSize + 1)
	if err != nil {
		t.Fatal(err)
	}
	if b != a+layout.PageSize {
		t.Errorf("second IOVA %#x, want %#x", uint64(b), uint64(a+layout.PageSize))
	}
	if err := d.FreeIOVA(a, 100); err != nil {
		t.Fatal(err)
	}
	c, err := d.AllocIOVA(50)
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Errorf("freed IOVA not reused: got %#x, want %#x", uint64(c), uint64(a))
	}
	if _, err := d.AllocIOVA(0); err == nil {
		t.Error("zero-length allocation accepted")
	}
	if err := d.FreeIOVA(IOVA(123), 10); err == nil {
		t.Error("bogus free accepted")
	}
}

func TestUnmapErrors(t *testing.T) {
	u, _, _ := newUnit(t, Strict)
	if err := u.Unmap(nicDev, iovaBase); err == nil {
		t.Error("unmap of unmapped IOVA accepted")
	}
	if err := u.Unmap(DeviceID(9), iovaBase); err == nil {
		t.Error("unmap on unattached device accepted")
	}
	if err := u.Map(DeviceID(9), iovaBase, 1, PermRead); err == nil {
		t.Error("map on unattached device accepted")
	}
	if _, err := u.Translate(DeviceID(9), iovaBase, false); err == nil {
		t.Error("translate on unattached device accepted")
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{Dev: 3, Addr: 0x1000, Write: true, Perm: PermRead}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
	g := &Fault{Dev: 3, Addr: 0x1000, Write: false, Perm: PermNone}
	if g.Error() == "" {
		t.Error("empty fault message")
	}
}
