package iommu

import "dmafault/internal/layout"

// tlbEntry caches one translation.
type tlbEntry struct {
	pfn  layout.PFN
	perm Perm
}

// IOTLB caches recent I/O translations. Like the hardware it models, it is
// NOT kept consistent with the page table automatically: the OS must
// explicitly invalidate entries (§5.2.1), and until it does a device keeps
// translating through stale entries.
type IOTLB struct {
	entries  map[IOVA]tlbEntry
	order    []IOVA // FIFO eviction order
	capacity int

	Hits, Misses, Evictions, Invalidations, Flushes uint64
}

// DefaultIOTLBCapacity approximates the per-domain IOTLB reach of a
// contemporary IOMMU.
const DefaultIOTLBCapacity = 256

// NewIOTLB builds an IOTLB with the given entry capacity (0 = default).
func NewIOTLB(capacity int) *IOTLB {
	if capacity <= 0 {
		capacity = DefaultIOTLBCapacity
	}
	return &IOTLB{entries: make(map[IOVA]tlbEntry, capacity), capacity: capacity}
}

// key truncates an IOVA to its page.
func key(v IOVA) IOVA { return v &^ IOVA(layout.PageMask) }

// Lookup returns the cached translation of the page containing v.
func (t *IOTLB) Lookup(v IOVA) (layout.PFN, Perm, bool) {
	e, ok := t.entries[key(v)]
	if !ok {
		t.Misses++
		return 0, PermNone, false
	}
	t.Hits++
	return e.pfn, e.perm, true
}

// Insert caches a translation, evicting the oldest entry at capacity.
func (t *IOTLB) Insert(v IOVA, pfn layout.PFN, perm Perm) {
	k := key(v)
	if _, ok := t.entries[k]; ok {
		t.entries[k] = tlbEntry{pfn, perm}
		return
	}
	if len(t.entries) >= t.capacity {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, oldest)
		t.Evictions++
	}
	t.entries[k] = tlbEntry{pfn, perm}
	t.order = append(t.order, k)
}

// Invalidate drops the cached translation of one page, if present.
func (t *IOTLB) Invalidate(v IOVA) {
	k := key(v)
	if _, ok := t.entries[k]; ok {
		delete(t.entries, k)
		for i, o := range t.order {
			if o == k {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	t.Invalidations++
}

// FlushAll drops every cached translation (a global invalidation).
func (t *IOTLB) FlushAll() {
	t.entries = make(map[IOVA]tlbEntry, t.capacity)
	t.order = t.order[:0]
	t.Flushes++
}

// Len returns the number of cached translations.
func (t *IOTLB) Len() int { return len(t.entries) }
