package iommu

import (
	"testing"

	"dmafault/internal/layout"
)

// The deferred-mode stale window (Fig. 6) is bounded not only by the flush
// timer but by IOTLB capacity: other translation traffic can evict the stale
// entry early. This matters to attack reliability — a busy NIC may lose its
// window before the timer fires.
func TestStaleEntryEvictedUnderIOTLBPressure(t *testing.T) {
	u, _, _ := newUnit(t, Deferred)
	target := IOVA(iovaBase)
	if err := u.Map(nicDev, target, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, target, true); err != nil { // prime
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, target); err != nil {
		t.Fatal(err)
	}
	// Stale access works now.
	if _, err := u.Translate(nicDev, target, true); err != nil {
		t.Fatalf("stale access blocked prematurely: %v", err)
	}
	// Pressure: translate through more distinct pages than the IOTLB holds.
	for i := 0; i < DefaultIOTLBCapacity+8; i++ {
		v := IOVA(iovaBase) + IOVA((i+1)*layout.PageSize)
		if err := u.Map(nicDev, v, layout.PFN(100+i), PermRead); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Translate(nicDev, v, false); err != nil {
			t.Fatal(err)
		}
	}
	// The stale entry has been evicted: the window closed early, well
	// before the 10 ms timer.
	if _, err := u.Translate(nicDev, target, true); err == nil {
		t.Fatal("stale access survived IOTLB pressure beyond capacity")
	}
}

// Conversely, a device that keeps re-touching its stale entry keeps it warm
// under light pressure (FIFO keeps re-inserted? No — FIFO does not refresh;
// the entry survives only while fewer than capacity other entries arrive).
func TestStaleEntrySurvivesLightTraffic(t *testing.T) {
	u, _, _ := newUnit(t, Deferred)
	target := IOVA(iovaBase)
	if err := u.Map(nicDev, target, 7, PermBidir); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Translate(nicDev, target, true); err != nil {
		t.Fatal(err)
	}
	if err := u.Unmap(nicDev, target); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < DefaultIOTLBCapacity/2; i++ {
		v := IOVA(iovaBase) + IOVA((i+1)*layout.PageSize)
		if err := u.Map(nicDev, v, layout.PFN(100+i), PermRead); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Translate(nicDev, v, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := u.Translate(nicDev, target, true); err != nil {
		t.Fatalf("stale access lost under light traffic: %v", err)
	}
	if u.Stats().StaleHits < 1 {
		t.Error("stale hits not counted")
	}
}
