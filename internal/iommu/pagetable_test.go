package iommu

import (
	"testing"
	"testing/quick"

	"dmafault/internal/layout"
)

func TestPermAllows(t *testing.T) {
	if !PermRead.Allows(false) || PermRead.Allows(true) {
		t.Error("PermRead semantics wrong")
	}
	// §2.2: WRITE does not grant READ.
	if !PermWrite.Allows(true) || PermWrite.Allows(false) {
		t.Error("PermWrite semantics wrong")
	}
	if !PermBidir.Allows(true) || !PermBidir.Allows(false) {
		t.Error("PermBidir semantics wrong")
	}
	if PermNone.Allows(true) || PermNone.Allows(false) {
		t.Error("PermNone semantics wrong")
	}
	for _, c := range []struct {
		p Perm
		s string
	}{{PermRead, "READ"}, {PermWrite, "WRITE"}, {PermBidir, "BIDIRECTIONAL"}, {PermNone, "NONE"}} {
		if c.p.String() != c.s {
			t.Errorf("%v.String() = %q", c.p, c.p.String())
		}
	}
}

func TestPageTableMapWalkUnmap(t *testing.T) {
	var pt PageTable
	v := IOVA(1 << 32)
	if err := pt.Map(v, 42, PermWrite); err != nil {
		t.Fatal(err)
	}
	if pt.Entries() != 1 {
		t.Errorf("Entries = %d", pt.Entries())
	}
	pfn, perm, ok := pt.Walk(v + 123) // same page, any offset
	if !ok || pfn != 42 || perm != PermWrite {
		t.Fatalf("Walk = %d, %v, %v", pfn, perm, ok)
	}
	if _, _, ok := pt.Walk(v + layout.PageSize); ok {
		t.Error("Walk found unmapped neighbour page")
	}
	if err := pt.Map(v+8, 43, PermRead); err == nil {
		t.Error("remap of mapped page accepted")
	}
	gotPFN, gotPerm, err := pt.Unmap(v)
	if err != nil || gotPFN != 42 || gotPerm != PermWrite {
		t.Fatalf("Unmap = %d, %v, %v", gotPFN, gotPerm, err)
	}
	if _, _, ok := pt.Walk(v); ok {
		t.Error("entry survived unmap")
	}
	if _, _, err := pt.Unmap(v); err == nil {
		t.Error("double unmap accepted")
	}
	if pt.Entries() != 0 {
		t.Errorf("Entries = %d after unmap", pt.Entries())
	}
}

func TestPageTableRejects(t *testing.T) {
	var pt PageTable
	if err := pt.Map(1<<32, 1, PermNone); err == nil {
		t.Error("PermNone mapping accepted")
	}
	if err := pt.Map(1<<48, 1, PermRead); err == nil {
		t.Error("IOVA beyond 48 bits accepted")
	}
	if _, _, err := pt.Unmap(1 << 40); err == nil {
		t.Error("unmap of never-touched subtree accepted")
	}
}

// Property: the page table agrees with a map-based oracle under random
// map/unmap sequences.
func TestPropertyPageTableOracle(t *testing.T) {
	f := func(ops []uint16) bool {
		var pt PageTable
		oracle := make(map[IOVA]pte)
		for i, op := range ops {
			v := IOVA(uint64(op)%64*layout.PageSize) + iovaBase
			if i%2 == 0 {
				perm := Perm(op%3) + 1
				err := pt.Map(v, layout.PFN(op), perm)
				_, exists := oracle[v]
				if exists != (err != nil) {
					return false
				}
				if err == nil {
					oracle[v] = pte{pfn: layout.PFN(op), perm: perm, present: true}
				}
			} else {
				_, _, err := pt.Unmap(v)
				_, exists := oracle[v]
				if exists != (err == nil) {
					return false
				}
				delete(oracle, v)
			}
			// Full agreement sweep.
			for page := uint64(0); page < 64; page++ {
				w := IOVA(page*layout.PageSize) + iovaBase
				pfn, perm, ok := pt.Walk(w)
				want, exists := oracle[w]
				if ok != exists {
					return false
				}
				if ok && (pfn != want.pfn || perm != want.perm) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestIOTLBBasics(t *testing.T) {
	tlb := NewIOTLB(2)
	v1, v2, v3 := IOVA(0x1000), IOVA(0x2000), IOVA(0x3000)
	if _, _, ok := tlb.Lookup(v1); ok {
		t.Error("hit on empty IOTLB")
	}
	tlb.Insert(v1, 1, PermRead)
	tlb.Insert(v2, 2, PermWrite)
	if pfn, perm, ok := tlb.Lookup(v1 + 5); !ok || pfn != 1 || perm != PermRead {
		t.Error("lookup within page failed")
	}
	tlb.Insert(v3, 3, PermBidir) // evicts v1 (FIFO)
	if _, _, ok := tlb.Lookup(v1); ok {
		t.Error("capacity not enforced")
	}
	if tlb.Evictions != 1 {
		t.Errorf("Evictions = %d", tlb.Evictions)
	}
	tlb.Invalidate(v2)
	if _, _, ok := tlb.Lookup(v2); ok {
		t.Error("entry survived invalidate")
	}
	tlb.FlushAll()
	if tlb.Len() != 0 {
		t.Error("entries survived flush")
	}
	if tlb.Flushes != 1 {
		t.Errorf("Flushes = %d", tlb.Flushes)
	}
	// Re-insert over existing key must not duplicate.
	tlb.Insert(v1, 1, PermRead)
	tlb.Insert(v1, 9, PermWrite)
	if pfn, perm, _ := tlb.Lookup(v1); pfn != 9 || perm != PermWrite {
		t.Error("re-insert did not update")
	}
	if tlb.Len() != 1 {
		t.Error("re-insert duplicated entry")
	}
}
