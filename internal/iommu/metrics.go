package iommu

import "dmafault/internal/metrics"

// The IOMMU implements metrics.Source, exposing the invalidation-policy
// counters the paper's evaluation watches (§5.2.1, Fig. 6): strict
// invalidations vs deferred global flushes, stale-IOTLB translations (the
// attack window in action), and the live flush-queue depth per domain.
//
// Collection reads the unit's plain counters; gather only while the
// simulated machine is quiescent (see the metrics package comment).

// Describe implements metrics.Source.
func (u *IOMMU) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "iommu_maps_total", Help: "Page translations installed.", Kind: metrics.KindCounter},
		{Name: "iommu_unmaps_total", Help: "Page translations removed.", Kind: metrics.KindCounter},
		{Name: "iommu_translations_total", Help: "Device accesses translated.", Kind: metrics.KindCounter},
		{Name: "iommu_faults_total", Help: "Device accesses blocked by the IOMMU.", Kind: metrics.KindCounter},
		{Name: "iommu_strict_invalidations_total", Help: "Synchronous IOTLB invalidations (strict mode).", Kind: metrics.KindCounter},
		{Name: "iommu_global_flushes_total", Help: "Deferred-mode global IOTLB flushes.", Kind: metrics.KindCounter},
		{Name: "iommu_invalidation_nanos_total", Help: "Virtual time spent invalidating (both modes).", Kind: metrics.KindCounter},
		{Name: "iommu_stale_iotlb_hits_total", Help: "Translations served from a stale IOTLB entry (the deferred-mode attack window).", Kind: metrics.KindCounter},
		{Name: "iommu_flush_queue_pending", Help: "Unmapped IOVAs awaiting the next global flush, per domain.", Kind: metrics.KindGauge},
		{Name: "iommu_flush_queue_limit", Help: "Queue depth that forces a global flush.", Kind: metrics.KindGauge},
	}
}

// Collect implements metrics.Source.
func (u *IOMMU) Collect(emit func(name string, s metrics.Sample)) {
	st := u.stats
	emit("iommu_maps_total", metrics.Sample{Value: float64(st.Maps)})
	emit("iommu_unmaps_total", metrics.Sample{Value: float64(st.Unmaps)})
	emit("iommu_translations_total", metrics.Sample{Value: float64(st.Translations)})
	emit("iommu_faults_total", metrics.Sample{Value: float64(st.Faults)})
	emit("iommu_strict_invalidations_total", metrics.Sample{Value: float64(st.StrictInvalidations)})
	emit("iommu_global_flushes_total", metrics.Sample{Value: float64(st.GlobalFlushes)})
	emit("iommu_invalidation_nanos_total", metrics.Sample{Value: float64(st.InvalidationTime)})
	emit("iommu_stale_iotlb_hits_total", metrics.Sample{Value: float64(st.StaleHits)})
	emit("iommu_flush_queue_limit", metrics.Sample{Value: float64(u.flushQueueLimit)})
	for _, d := range u.all {
		emit("iommu_flush_queue_pending", metrics.Sample{
			Labels: metrics.L("domain", d.name),
			Value:  float64(len(d.flushQueue)),
		})
	}
}
