package iommu

import (
	"fmt"

	"dmafault/internal/layout"
)

// IOVA is an I/O virtual address: the address space a device sees.
type IOVA uint64

// Perm is the access-rights field of an I/O page table entry. Per §2.2,
// WRITE does not imply READ; BIDIRECTIONAL is both.
type Perm uint8

const (
	PermNone Perm = 0
	PermRead Perm = 1 << iota
	PermWrite
	PermBidir = PermRead | PermWrite
)

// Allows reports whether the permission admits the requested access.
func (p Perm) Allows(write bool) bool {
	if write {
		return p&PermWrite != 0
	}
	return p&PermRead != 0
}

// String names the permission the way the paper's figures do.
func (p Perm) String() string {
	switch p {
	case PermRead:
		return "READ"
	case PermWrite:
		return "WRITE"
	case PermBidir:
		return "BIDIRECTIONAL"
	case PermNone:
		return "NONE"
	default:
		return fmt.Sprintf("Perm(%d)", uint8(p))
	}
}

// pte is a leaf I/O page table entry.
type pte struct {
	pfn     layout.PFN
	perm    Perm
	present bool
}

// ptLevel is one 512-entry radix node of the 4-level table.
type ptLevel struct {
	children [512]*ptLevel // nil at leaf level
	leaves   [512]pte      // used at level 0 only
}

// PageTable is a 4-level (48-bit, 4 KiB granule) I/O page table, structured
// like the VT-d second-level tables the paper's testbed uses.
type PageTable struct {
	root    ptLevel
	entries uint64
}

// indices splits an IOVA into the four 9-bit radix indices.
func indices(v IOVA) [4]int {
	return [4]int{
		int(v >> 39 & 0x1ff),
		int(v >> 30 & 0x1ff),
		int(v >> 21 & 0x1ff),
		int(v >> 12 & 0x1ff),
	}
}

// Map installs a translation for the page containing v. Mapping an already
// present entry is an error (the DMA API never remaps in place).
func (t *PageTable) Map(v IOVA, pfn layout.PFN, perm Perm) error {
	if perm == PermNone {
		return fmt.Errorf("iommu: mapping %#x with no permissions", uint64(v))
	}
	if v>>48 != 0 {
		return fmt.Errorf("iommu: IOVA %#x beyond 48-bit space", uint64(v))
	}
	idx := indices(v)
	n := &t.root
	for l := 0; l < 3; l++ {
		if n.children[idx[l]] == nil {
			n.children[idx[l]] = &ptLevel{}
		}
		n = n.children[idx[l]]
	}
	e := &n.leaves[idx[3]]
	if e.present {
		return fmt.Errorf("iommu: IOVA page %#x already mapped", uint64(v)&^uint64(layout.PageMask))
	}
	*e = pte{pfn: pfn, perm: perm, present: true}
	t.entries++
	return nil
}

// Unmap removes the translation for the page containing v and returns the
// entry it held. Only the page table changes: IOTLB invalidation is a
// separate, explicit step — the gap between the two is the deferred-
// invalidation vulnerability (§5.2.1, Fig. 6).
func (t *PageTable) Unmap(v IOVA) (layout.PFN, Perm, error) {
	idx := indices(v)
	n := &t.root
	for l := 0; l < 3; l++ {
		if n.children[idx[l]] == nil {
			return 0, PermNone, fmt.Errorf("iommu: unmap of unmapped IOVA %#x", uint64(v))
		}
		n = n.children[idx[l]]
	}
	e := &n.leaves[idx[3]]
	if !e.present {
		return 0, PermNone, fmt.Errorf("iommu: unmap of unmapped IOVA %#x", uint64(v))
	}
	pfn, perm := e.pfn, e.perm
	*e = pte{}
	t.entries--
	return pfn, perm, nil
}

// Walk looks up the translation for the page containing v.
func (t *PageTable) Walk(v IOVA) (layout.PFN, Perm, bool) {
	idx := indices(v)
	n := &t.root
	for l := 0; l < 3; l++ {
		if n.children[idx[l]] == nil {
			return 0, PermNone, false
		}
		n = n.children[idx[l]]
	}
	e := n.leaves[idx[3]]
	if !e.present {
		return 0, PermNone, false
	}
	return e.pfn, e.perm, true
}

// Entries returns the number of present leaf entries.
func (t *PageTable) Entries() uint64 { return t.entries }
