package cminor

// File is one parsed translation unit.
type File struct {
	Name    string
	Structs []*StructDef
	Funcs   []*FuncDef
}

// StructDef is a struct definition.
type StructDef struct {
	Pos    Pos
	Name   string
	Fields []Field
}

// Field is one struct member.
type Field struct {
	Pos  Pos
	Name string
	Type *Type
}

// TypeKind discriminates Type.
type TypeKind int

const (
	// TypeBase is a scalar (int, u32, char, dma_addr_t, void, ...).
	TypeBase TypeKind = iota
	// TypeStruct is "struct Name" by value.
	TypeStruct
	// TypePtr is a pointer to Elem.
	TypePtr
	// TypeArray is Elem[Len].
	TypeArray
	// TypeFuncPtr is a function pointer: "ret (*f)(args)".
	TypeFuncPtr
)

// Type describes a declared C type.
type Type struct {
	Kind TypeKind
	Name string // base type or struct tag
	Elem *Type  // pointee / array element
	Len  int    // array length
}

// IsPtr reports whether the type is any pointer.
func (t *Type) IsPtr() bool { return t != nil && (t.Kind == TypePtr || t.Kind == TypeFuncPtr) }

// Deref returns the pointee of a pointer type.
func (t *Type) Deref() *Type {
	if t != nil && t.Kind == TypePtr {
		return t.Elem
	}
	return nil
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "?"
	}
	switch t.Kind {
	case TypeBase:
		return t.Name
	case TypeStruct:
		return "struct " + t.Name
	case TypePtr:
		return t.Elem.String() + " *"
	case TypeArray:
		return t.Elem.String() + " []"
	case TypeFuncPtr:
		return "void (*)(...)"
	default:
		return "?"
	}
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// FuncDef is a function definition with a parsed body.
type FuncDef struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []Param
	Body   []Stmt
}

// Stmt is a statement.
type Stmt interface{ stmt() }

// DeclStmt declares (and optionally initializes) a local variable.
type DeclStmt struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // may be nil
}

// ExprStmt evaluates an expression (assignment or call).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// LoopStmt is a for or while loop (header expressions are kept only as the
// init/cond/post of for, which DMA analysis ignores).
type LoopStmt struct {
	Pos  Pos
	Body []Stmt
}

// SwitchStmt is a switch: case labels are discarded, the body statements
// kept (the analysis treats it as a container).
type SwitchStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

func (*DeclStmt) stmt()   {}
func (*ExprStmt) stmt()   {}
func (*IfStmt) stmt()     {}
func (*LoopStmt) stmt()   {}
func (*SwitchStmt) stmt() {}
func (*ReturnStmt) stmt() {}

// Expr is an expression.
type Expr interface {
	expr()
	ExprPos() Pos
}

// Ident is a name use.
type Ident struct {
	Pos  Pos
	Name string
}

// Number is a numeric literal.
type Number struct {
	Pos  Pos
	Text string
}

// StringLit is a string literal.
type StringLit struct {
	Pos  Pos
	Text string
}

// Call is fun(args...). Fun is an expression (usually an Ident).
type Call struct {
	Pos  Pos
	Fun  Expr
	Args []Expr
}

// FunName returns the callee name for direct calls, "" otherwise.
func (c *Call) FunName() string {
	if id, ok := c.Fun.(*Ident); ok {
		return id.Name
	}
	return ""
}

// Member is x.f or x->f.
type Member struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// Index is x[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
}

// Unary is op x (&, *, !, -, ~).
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is x op y (comparison/arithmetic; analysis treats it opaquely).
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Assign is lhs = rhs (also op-assign).
type Assign struct {
	Pos Pos
	Op  string
	LHS Expr
	RHS Expr
}

// Sizeof is sizeof(expr) or sizeof(struct X) / sizeof(*p).
type Sizeof struct {
	Pos Pos
	// Arg is the operand expression, or nil when TypeArg is set.
	Arg     Expr
	TypeArg *Type
}

func (*Ident) expr()     {}
func (*Number) expr()    {}
func (*StringLit) expr() {}
func (*Call) expr()      {}
func (*Member) expr()    {}
func (*Index) expr()     {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Assign) expr()    {}
func (*Sizeof) expr()    {}

func (e *Ident) ExprPos() Pos     { return e.Pos }
func (e *Number) ExprPos() Pos    { return e.Pos }
func (e *StringLit) ExprPos() Pos { return e.Pos }
func (e *Call) ExprPos() Pos      { return e.Pos }
func (e *Member) ExprPos() Pos    { return e.Pos }
func (e *Index) ExprPos() Pos     { return e.Pos }
func (e *Unary) ExprPos() Pos     { return e.Pos }
func (e *Binary) ExprPos() Pos    { return e.Pos }
func (e *Assign) ExprPos() Pos    { return e.Pos }
func (e *Sizeof) ExprPos() Pos    { return e.Pos }
