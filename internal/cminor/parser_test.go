package cminor

import (
	"strings"
	"testing"
)

const driverSnippet = `
/* A realistic driver fragment. */
#include <linux/dma-mapping.h>
#define RING_SIZE 256

struct nvme_fc_fcp_op {
	struct request *rq;
	void (*done)(struct request *);
	u32 flags;
	char rsp_iu[64];
	dma_addr_t rsp_dma;
};

struct my_ring {
	struct sk_buff *skb[RING_SIZE];
	u64 base;
};

static int nvme_fc_map_op(struct device *dev, struct nvme_fc_fcp_op *op)
{
	dma_addr_t dma;
	int i;

	if (!op)
		return -1;
	dma = dma_map_single(dev, &op->rsp_iu, sizeof(op->rsp_iu), DMA_FROM_DEVICE);
	op->rsp_dma = dma;
	for (i = 0; i < RING_SIZE; i++) {
		op->flags |= 1;
	}
	while (op->flags > 100)
		op->flags = op->flags >> 1;
	return 0;
}

static void rx_refill(struct device *dev, struct my_ring *ring)
{
	struct sk_buff *skb;
	char stackbuf[64];
	skb = netdev_alloc_skb(dev, 2048);
	if (!skb) {
		return;
	}
	dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
	dma_map_single(dev, stackbuf, sizeof(stackbuf), DMA_TO_DEVICE);
	ring->skb[0] = skb;
}
`

func parseSnippet(t *testing.T) *File {
	t.Helper()
	f, err := Parse("drivers/net/test.c", driverSnippet)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestParseStructs(t *testing.T) {
	f := parseSnippet(t)
	if len(f.Structs) != 2 {
		t.Fatalf("structs = %d", len(f.Structs))
	}
	op := f.Structs[0]
	if op.Name != "nvme_fc_fcp_op" || len(op.Fields) != 5 {
		t.Fatalf("struct %s has %d fields", op.Name, len(op.Fields))
	}
	if op.Fields[0].Type.Kind != TypePtr || op.Fields[0].Type.Elem.Name != "request" {
		t.Errorf("rq type = %v", op.Fields[0].Type)
	}
	if op.Fields[1].Name != "done" || op.Fields[1].Type.Kind != TypeFuncPtr {
		t.Errorf("done field = %+v", op.Fields[1])
	}
	if op.Fields[3].Type.Kind != TypeArray || op.Fields[3].Type.Len != 64 {
		t.Errorf("rsp_iu type = %v", op.Fields[3].Type)
	}
	if op.Fields[4].Type.Kind != TypeBase || op.Fields[4].Type.Name != "dma_addr_t" {
		t.Errorf("rsp_dma type = %v", op.Fields[4].Type)
	}
	ring := f.Structs[1]
	if ring.Fields[0].Type.Kind != TypeArray || ring.Fields[0].Type.Elem.Kind != TypePtr {
		t.Errorf("skb[] type = %v", ring.Fields[0].Type)
	}
}

func TestParseFunctions(t *testing.T) {
	f := parseSnippet(t)
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(f.Funcs))
	}
	fn := f.Funcs[0]
	if fn.Name != "nvme_fc_map_op" || len(fn.Params) != 2 {
		t.Fatalf("func = %s/%d", fn.Name, len(fn.Params))
	}
	if fn.Params[1].Name != "op" || fn.Params[1].Type.Deref().Name != "nvme_fc_fcp_op" {
		t.Errorf("param op = %+v", fn.Params[1])
	}
	// Body: if, dma assignment, member assignment, for, while, return.
	if len(fn.Body) < 5 {
		t.Fatalf("body stmts = %d", len(fn.Body))
	}
	decl, ok := fn.Body[0].(*DeclStmt)
	if !ok || decl.Name != "dma" || decl.Type.Name != "dma_addr_t" {
		t.Errorf("first stmt = %#v", fn.Body[0])
	}
}

// findCalls collects all calls of a name in a function body.
func findCalls(body []Stmt, name string) []*Call {
	var out []*Call
	var walkExpr func(e Expr)
	walkExpr = func(e Expr) {
		switch v := e.(type) {
		case *Call:
			if v.FunName() == name {
				out = append(out, v)
			}
			walkExpr(v.Fun)
			for _, a := range v.Args {
				walkExpr(a)
			}
		case *Assign:
			walkExpr(v.LHS)
			walkExpr(v.RHS)
		case *Unary:
			walkExpr(v.X)
		case *Binary:
			walkExpr(v.X)
			walkExpr(v.Y)
		case *Member:
			walkExpr(v.X)
		case *Index:
			walkExpr(v.X)
			walkExpr(v.I)
		case *Sizeof:
			if v.Arg != nil {
				walkExpr(v.Arg)
			}
		}
	}
	var walkStmts func([]Stmt)
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			switch v := s.(type) {
			case *DeclStmt:
				if v.Init != nil {
					walkExpr(v.Init)
				}
			case *ExprStmt:
				walkExpr(v.X)
			case *IfStmt:
				walkExpr(v.Cond)
				walkStmts(v.Then)
				walkStmts(v.Else)
			case *LoopStmt:
				walkStmts(v.Body)
			case *ReturnStmt:
				if v.X != nil {
					walkExpr(v.X)
				}
			}
		}
	}
	walkStmts(body)
	return out
}

func TestParseDMACall(t *testing.T) {
	f := parseSnippet(t)
	calls := findCalls(f.Funcs[0].Body, "dma_map_single")
	if len(calls) != 1 {
		t.Fatalf("dma_map_single calls = %d", len(calls))
	}
	c := calls[0]
	if len(c.Args) != 4 {
		t.Fatalf("args = %d", len(c.Args))
	}
	u, ok := c.Args[1].(*Unary)
	if !ok || u.Op != "&" {
		t.Fatalf("second arg = %#v", c.Args[1])
	}
	m, ok := u.X.(*Member)
	if !ok || m.Name != "rsp_iu" || !m.Arrow {
		t.Fatalf("member = %#v", u.X)
	}
	if id, ok := m.X.(*Ident); !ok || id.Name != "op" {
		t.Fatalf("base = %#v", m.X)
	}
	if c.Pos.Line == 0 || !strings.HasSuffix(c.Pos.File, "test.c") {
		t.Errorf("pos = %v", c.Pos)
	}

	rx := findCalls(f.Funcs[1].Body, "dma_map_single")
	if len(rx) != 2 {
		t.Fatalf("rx dma calls = %d", len(rx))
	}
	m2, ok := rx[0].Args[1].(*Member)
	if !ok || m2.Name != "data" {
		t.Fatalf("skb->data arg = %#v", rx[0].Args[1])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"struct x { int a }",           // missing ; after field and struct
		"int f( {",                     // garbage params
		"int f(void) { return 1 }",     // missing ;
		"struct x { void (*)(int); };", // unnamed function pointer
		"int f(void) { x = ; }",
		"/* unterminated",
		`int f(void) { char *s = "unterminated; }`,
	}
	for _, src := range bad {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestParsePositions(t *testing.T) {
	f := parseSnippet(t)
	if f.Structs[0].Pos.Line != 6 {
		t.Errorf("struct pos = %d, want 6", f.Structs[0].Pos.Line)
	}
}

func TestTypeStrings(t *testing.T) {
	ptr := &Type{Kind: TypePtr, Elem: &Type{Kind: TypeStruct, Name: "sk_buff"}}
	if ptr.String() != "struct sk_buff *" {
		t.Errorf("String = %q", ptr.String())
	}
	if !ptr.IsPtr() || ptr.Deref().Name != "sk_buff" {
		t.Error("pointer helpers wrong")
	}
	var nilT *Type
	if nilT.String() != "?" || nilT.IsPtr() || nilT.Deref() != nil {
		t.Error("nil type helpers wrong")
	}
	fp := &Type{Kind: TypeFuncPtr}
	if !fp.IsPtr() {
		t.Error("func ptr not a pointer")
	}
}

func TestParseCastAndTernary(t *testing.T) {
	src := `
int f(struct sk_buff *skb, void *p)
{
	struct ethhdr *eh;
	int n;
	eh = (struct ethhdr *)skb->data;
	n = skb->len > 60 ? 60 : skb->len;
	return n;
}
`
	f, err := Parse("cast.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 {
		t.Fatal("func count")
	}
}
