package cminor

import (
	"testing"
)

func TestLexerTokenKinds(t *testing.T) {
	src := `
#define FOO(x) \
	((x) + 1)
/* block
   comment */
int f(void)
{
	char c;
	char *s;
	int n;
	c = 'a';
	s = "str\"esc";
	n = 0x1fUL << 2;
	n += 1;
	n -= 1;
	n <<= 1;
	n >>= 1;
	n |= 2;
	n &= 3;
	n ^= 4;
	n *= 5;
	n /= 6;
	n %= 7;
	return n;
}
`
	f, err := Parse("lex.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 1 {
		t.Fatal("func count")
	}
	// Line continuation in #define must not desync line numbers: int f is
	// on line 6.
	if f.Funcs[0].Pos.Line != 6 {
		t.Errorf("func pos = %d, want 6", f.Funcs[0].Pos.Line)
	}
}

func TestLexerErrors(t *testing.T) {
	bad := []string{
		"int f(void) { char c = 'x; }",
		"/* never closed",
		"int f(void) { char *s = \"split\nstring\"; }",
	}
	for _, src := range bad {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestParseGotoLabelsAndUnions(t *testing.T) {
	src := `
union reg { u32 word; u8 bytes[4]; };

static void g(struct dev *d)
{
	int i;
	i = 0;
retry:
	i++;
	if (i < 3)
		goto retry;
	while (i > 0)
		i--;
	for (;;) {
		break;
	}
	;
}
`
	f, err := Parse("labels.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Structs) != 1 || f.Structs[0].Name != "reg" {
		t.Errorf("union not parsed as struct-like: %+v", f.Structs)
	}
}

func TestExprPositionsAndMarkers(t *testing.T) {
	src := `
int f(struct sk_buff *skb, int n)
{
	int x;
	char s[4];
	x = sizeof(struct sk_buff);
	x = sizeof(int);
	x = -n + ~n - !n;
	x = skb->len ? 1 : 2;
	s[0] = 'c';
	return x;
}
`
	f, err := Parse("pos.c", src)
	if err != nil {
		t.Fatal(err)
	}
	// Every expression node must report a sane position.
	count := 0
	WalkStmts(f.Funcs[0].Body, func(s Stmt) {}, func(e Expr) {
		count++
		p := e.ExprPos()
		if p.File != "pos.c" || p.Line < 2 {
			t.Errorf("bad pos %v for %T", p, e)
		}
		if p.String() == "" {
			t.Error("empty pos string")
		}
	})
	if count < 15 {
		t.Errorf("walked only %d expressions", count)
	}
}

func TestTypeStringForms(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{&Type{Kind: TypeBase, Name: "u64"}, "u64"},
		{&Type{Kind: TypeStruct, Name: "page"}, "struct page"},
		{&Type{Kind: TypeArray, Elem: &Type{Kind: TypeBase, Name: "char"}, Len: 4}, "char []"},
		{&Type{Kind: TypeFuncPtr}, "void (*)(...)"},
		{&Type{Kind: TypeKind(99)}, "?"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestMultiDeclaratorFields(t *testing.T) {
	src := `
struct multi {
	u32 a, b, c;
	u8 *p, *q;
};
`
	f, err := Parse("multi.c", src)
	if err != nil {
		t.Fatal(err)
	}
	sd := f.Structs[0]
	if len(sd.Fields) != 5 {
		t.Fatalf("fields = %d", len(sd.Fields))
	}
	if sd.Fields[4].Name != "q" || !sd.Fields[4].Type.IsPtr() {
		t.Errorf("field q = %+v", sd.Fields[4])
	}
}

func TestSymbolicArraySizes(t *testing.T) {
	src := `
struct shinfo {
	char frags[MAX_SKB_FRAGS];
};
static void f(struct dev *d)
{
	char buf[RING_SIZE];
	buf[0] = 1;
}
`
	if _, err := Parse("sym.c", src); err != nil {
		t.Fatal(err)
	}
}

func TestLongTypeNames(t *testing.T) {
	src := `
static unsigned long g(unsigned long x, long long y)
{
	unsigned long z;
	z = x + y;
	return z;
}
`
	f, err := Parse("long.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Funcs[0].Ret.Name != "long" && f.Funcs[0].Ret.Name != "unsigned long" {
		t.Logf("ret parsed as %q (accepted)", f.Funcs[0].Ret.Name)
	}
}
