package cminor

import "fmt"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses a translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := Lex(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	out := &File{Name: file}
	for !p.at(TokEOF, "") {
		switch {
		case (p.atIdent("struct") || p.atIdent("union") || p.atIdent("enum")) && p.peekIs(2, "{"):
			sd, err := p.parseStructDef()
			if err != nil {
				return nil, err
			}
			out.Structs = append(out.Structs, sd)
		default:
			fn, err := p.parseFuncDef()
			if err != nil {
				return nil, err
			}
			out.Funcs = append(out.Funcs, fn)
		}
	}
	return out, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(k TokKind, text string) bool {
	t := p.cur()
	return t.Kind == k && (text == "" || t.Text == text)
}

func (p *parser) atIdent(name string) bool { return p.at(TokIdent, name) }

func (p *parser) peekIs(n int, text string) bool {
	if p.pos+n >= len(p.toks) {
		return false
	}
	return p.toks[p.pos+n].Text == text
}

func (p *parser) accept(text string) bool {
	if p.cur().Text == text && p.cur().Kind != TokEOF {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) (Token, error) {
	if p.cur().Text != text || p.cur().Kind == TokEOF {
		return Token{}, p.errf("expected %q, found %q", text, p.cur().Text)
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, p.cur().Line, fmt.Sprintf(format, args...))
}

func (p *parser) here() Pos { return Pos{File: p.file, Line: p.cur().Line} }

// typeQualifiers are skipped wherever they appear.
var typeQualifiers = map[string]bool{
	"static": true, "inline": true, "const": true, "volatile": true,
	"__always_inline": true, "extern": true, "unsigned": true, "signed": true,
	"__iomem": true, "__rcu": true, "noinline": true,
}

func (p *parser) skipQualifiers() {
	for p.cur().Kind == TokIdent && typeQualifiers[p.cur().Text] {
		// "unsigned" alone can BE the type (unsigned x) — keep it if the
		// next token is not a type-ish identifier.
		if p.cur().Text == "unsigned" || p.cur().Text == "signed" {
			nxt := p.toks[p.pos+1]
			if nxt.Kind != TokIdent {
				return
			}
		}
		p.pos++
	}
}

// parseTypePrefix parses the type up to (but excluding) the declarator name:
// qualifiers, "struct X" or a base name, then '*'s.
func (p *parser) parseTypePrefix() (*Type, error) {
	p.skipQualifiers()
	var t *Type
	switch {
	case p.atIdent("struct") || p.atIdent("union") || p.atIdent("enum"):
		p.next()
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected struct tag")
		}
		t = &Type{Kind: TypeStruct, Name: p.next().Text}
	case p.cur().Kind == TokIdent:
		name := p.next().Text
		// "long long", "unsigned long" and friends.
		for (name == "long" || name == "short" || name == "unsigned" || name == "signed") &&
			p.cur().Kind == TokIdent && (p.cur().Text == "long" || p.cur().Text == "int" || p.cur().Text == "char") {
			name += " " + p.next().Text
		}
		t = &Type{Kind: TypeBase, Name: name}
	default:
		return nil, p.errf("expected type, found %q", p.cur().Text)
	}
	for p.accept("*") {
		t = &Type{Kind: TypePtr, Elem: t}
	}
	p.skipQualifiers()
	for p.accept("*") {
		t = &Type{Kind: TypePtr, Elem: t}
	}
	return t, nil
}

// parseStructDef parses "struct Name { fields };".
func (p *parser) parseStructDef() (*StructDef, error) {
	pos := p.here()
	p.next() // struct
	name := p.next().Text
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	sd := &StructDef{Pos: pos, Name: name}
	for !p.accept("}") {
		if p.at(TokEOF, "") {
			return nil, p.errf("unterminated struct %s", name)
		}
		fields, err := p.parseFieldDecl()
		if err != nil {
			return nil, err
		}
		sd.Fields = append(sd.Fields, fields...)
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return sd, nil
}

// parseFieldDecl parses one struct member declaration (possibly a function
// pointer, an array, or a comma-separated list).
func (p *parser) parseFieldDecl() ([]Field, error) {
	pos := p.here()
	base, err := p.parseTypePrefix()
	if err != nil {
		return nil, err
	}
	// Function pointer: ret (*name)(params);
	if p.at(TokPunct, "(") && p.peekIs(1, "*") {
		p.next() // (
		p.next() // *
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected function-pointer field name")
		}
		name := p.next().Text
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if err := p.skipParenGroup(); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return []Field{{Pos: pos, Name: name, Type: &Type{Kind: TypeFuncPtr, Elem: base}}}, nil
	}
	var out []Field
	for {
		t := base
		for p.accept("*") {
			t = &Type{Kind: TypePtr, Elem: t}
		}
		if p.cur().Kind != TokIdent {
			return nil, p.errf("expected field name")
		}
		name := p.next().Text
		for p.accept("[") {
			n := 0
			if p.cur().Kind == TokNumber {
				fmt.Sscanf(p.next().Text, "%d", &n)
			} else if p.cur().Kind == TokIdent {
				p.next() // symbolic size (MAX_SKB_FRAGS...)
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			t = &Type{Kind: TypeArray, Elem: t, Len: n}
		}
		out = append(out, Field{Pos: pos, Name: name, Type: t})
		if p.accept(",") {
			continue
		}
		break
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return out, nil
}

// skipParenGroup consumes a balanced (...) group.
func (p *parser) skipParenGroup() error {
	if _, err := p.expect("("); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		if p.at(TokEOF, "") {
			return p.errf("unterminated parenthesis group")
		}
		switch p.next().Text {
		case "(":
			depth++
		case ")":
			depth--
		}
	}
	return nil
}

// parseFuncDef parses "ret name(params) { body }".
func (p *parser) parseFuncDef() (*FuncDef, error) {
	pos := p.here()
	ret, err := p.parseTypePrefix()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokIdent {
		return nil, p.errf("expected function name")
	}
	name := p.next().Text
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDef{Pos: pos, Name: name, Ret: ret}
	if !p.accept(")") {
		for {
			if p.atIdent("void") && p.peekIs(1, ")") {
				p.next()
				break
			}
			pt, err := p.parseTypePrefix()
			if err != nil {
				return nil, err
			}
			pname := ""
			if p.cur().Kind == TokIdent {
				pname = p.next().Text
			}
			fn.Params = append(fn.Params, Param{Name: pname, Type: pt})
			if p.accept(",") {
				continue
			}
			break
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	// A prototype (forward declaration) has no body.
	if p.accept(";") {
		fn.Body = nil
		return fn, nil
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

// parseBlock parses "{ stmts }".
func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.accept("}") {
		if p.at(TokEOF, "") {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
	}
	return out, nil
}

// declStarters are identifiers that begin a local declaration.
var declStarters = map[string]bool{
	"struct": true, "union": true, "enum": true,
	"int": true, "char": true, "void": true, "long": true, "short": true,
	"unsigned": true, "signed": true, "bool": true, "float": true, "double": true,
	"u8": true, "u16": true, "u32": true, "u64": true,
	"s8": true, "s16": true, "s32": true, "s64": true,
	"size_t": true, "ssize_t": true, "dma_addr_t": true, "gfp_t": true,
	"uint8_t": true, "uint16_t": true, "uint32_t": true, "uint64_t": true,
	"netdev_tx_t": true, "irqreturn_t": true, "phys_addr_t": true,
	"static": true, "const": true,
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.here()
	switch {
	case p.accept(";"):
		return nil, nil
	case p.atIdent("if"):
		return p.parseIf()
	case p.atIdent("for"), p.atIdent("while"):
		return p.parseLoop()
	case p.atIdent("do"):
		return p.parseDoWhile()
	case p.atIdent("switch"):
		return p.parseSwitch()
	case p.atIdent("return"):
		p.next()
		if p.accept(";") {
			return &ReturnStmt{Pos: pos}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{Pos: pos, X: x}, nil
	case p.atIdent("goto"), p.atIdent("break"), p.atIdent("continue"):
		p.next()
		if p.cur().Kind == TokIdent {
			p.next() // label
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return nil, nil
	case p.cur().Kind == TokIdent && declStarters[p.cur().Text] && !p.peekIs(1, "("):
		return p.parseDecl()
	case p.cur().Kind == TokIdent && p.peekIs(1, ":"):
		// label:
		p.next()
		p.next()
		return nil, nil
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.here()
	p.next() // if
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	thenStmts, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	var elseStmts []Stmt
	if p.atIdent("else") {
		p.next()
		elseStmts, err = p.parseStmtOrBlock()
		if err != nil {
			return nil, err
		}
	}
	return &IfStmt{Pos: pos, Cond: cond, Then: thenStmts, Else: elseStmts}, nil
}

func (p *parser) parseStmtOrBlock() ([]Stmt, error) {
	if p.at(TokPunct, "{") {
		return p.parseBlock()
	}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []Stmt{s}, nil
}

func (p *parser) parseLoop() (Stmt, error) {
	pos := p.here()
	kw := p.next().Text
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if kw == "for" {
		// init; cond; post — parsed loosely and discarded.
		for i := 0; i < 2; i++ {
			if !p.at(TokPunct, ";") {
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(";"); err != nil {
				return nil, err
			}
		}
		if !p.at(TokPunct, ")") {
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
		}
	} else {
		if _, err := p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	return &LoopStmt{Pos: pos, Body: body}, nil
}

// parseDoWhile parses "do stmt while (expr);" into a LoopStmt.
func (p *parser) parseDoWhile() (Stmt, error) {
	pos := p.here()
	p.next() // do
	body, err := p.parseStmtOrBlock()
	if err != nil {
		return nil, err
	}
	if !p.atIdent("while") {
		return nil, p.errf("expected while after do body")
	}
	p.next()
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if _, err := p.parseExpr(); err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return &LoopStmt{Pos: pos, Body: body}, nil
}

// parseSwitch parses "switch (expr) { case X: ... default: ... }"; labels
// are consumed, the contained statements collected.
func (p *parser) parseSwitch() (Stmt, error) {
	pos := p.here()
	p.next() // switch
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Pos: pos, Cond: cond}
	for !p.accept("}") {
		switch {
		case p.at(TokEOF, ""):
			return nil, p.errf("unterminated switch")
		case p.atIdent("case"):
			p.next()
			if _, err := p.parseExpr(); err != nil {
				return nil, err
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
		case p.atIdent("default"):
			p.next()
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
		default:
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if s != nil {
				sw.Body = append(sw.Body, s)
			}
		}
	}
	return sw, nil
}

// parseDecl parses a local variable declaration.
func (p *parser) parseDecl() (Stmt, error) {
	pos := p.here()
	base, err := p.parseTypePrefix()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokIdent {
		return nil, p.errf("expected variable name")
	}
	name := p.next().Text
	t := base
	for p.accept("[") {
		n := 0
		if p.cur().Kind == TokNumber {
			fmt.Sscanf(p.next().Text, "%d", &n)
		} else if p.cur().Kind == TokIdent {
			p.next()
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		t = &Type{Kind: TypeArray, Elem: t, Len: n}
	}
	d := &DeclStmt{Pos: pos, Name: name, Type: t}
	if p.accept("=") {
		init, err := p.parseAssignRHS()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	return d, nil
}

// Expression parsing. Precedence is collapsed: assignment > binary chain >
// unary > postfix > primary, which is all the analysis needs.

func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary()
	if err != nil {
		return nil, err
	}
	switch p.cur().Text {
	case "=", "+=", "-=", "|=", "&=", "*=", "/=", "^=", "<<=", ">>=", "%=":
		op := p.next().Text
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: lhs.ExprPos(), Op: op, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

// parseAssignRHS parses an initializer (no comma operator).
func (p *parser) parseAssignRHS() (Expr, error) { return p.parseExpr() }

var binaryOps = map[string]bool{
	"+": true, "-": true, "*": true, "/": true, "%": true,
	"<": true, ">": true, "<=": true, ">=": true, "==": true, "!=": true,
	"&&": true, "||": true, "|": true, "^": true, "<<": true, ">>": true, "&": true,
	"?": true,
}

func (p *parser) parseBinary() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokPunct && binaryOps[p.cur().Text] {
		op := p.next().Text
		if op == "?" {
			// Ternary: cond ? a : b — fold to Binary(a, b) under "?:".
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(":"); err != nil {
				return nil, err
			}
			b, err := p.parseBinary()
			if err != nil {
				return nil, err
			}
			lhs = &Binary{Pos: lhs.ExprPos(), Op: "?:", X: a, Y: b}
			continue
		}
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: lhs.ExprPos(), Op: op, X: lhs, Y: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	pos := p.here()
	switch p.cur().Text {
	case "&", "*", "!", "-", "~", "++", "--":
		op := p.next().Text
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: pos, Op: op, X: x}, nil
	}
	if p.atIdent("sizeof") {
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		s := &Sizeof{Pos: pos}
		if p.atIdent("struct") || (p.cur().Kind == TokIdent && declStarters[p.cur().Text] && p.peekIs(1, ")")) {
			t, err := p.parseTypePrefix()
			if err != nil {
				return nil, err
			}
			s.TypeArg = t
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Arg = x
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return s, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.here()
		switch {
		case p.accept("->"):
			if p.cur().Kind != TokIdent {
				return nil, p.errf("expected member name")
			}
			x = &Member{Pos: pos, X: x, Name: p.next().Text, Arrow: true}
		case p.accept("."):
			if p.cur().Kind != TokIdent {
				return nil, p.errf("expected member name")
			}
			x = &Member{Pos: pos, X: x, Name: p.next().Text}
		case p.accept("["):
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{Pos: pos, X: x, I: i}
		case p.accept("("):
			call := &Call{Pos: pos, Fun: x}
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(",") {
						continue
					}
					break
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			x = call
		case p.accept("++"), p.accept("--"):
			// post-inc/dec: transparent for analysis
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.here()
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.next()
		return &Ident{Pos: pos, Name: t.Text}, nil
	case TokNumber:
		p.next()
		return &Number{Pos: pos, Text: t.Text}, nil
	case TokString, TokChar:
		p.next()
		return &StringLit{Pos: pos, Text: t.Text}, nil
	}
	if p.accept("(") {
		// Cast "(struct x *)expr" or grouping.
		if p.cur().Kind == TokIdent && (declStarters[p.cur().Text] || p.atIdent("struct")) {
			if _, err := p.parseTypePrefix(); err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return p.parseUnary() // the cast operand, type discarded
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("unexpected token %q", t.Text)
}
