// Package cminor is a small C front end: a lexer, parser and AST for the
// subset of kernel C that device-driver DMA code is written in. It is the
// substrate SPADE analyzes (the paper's SPADE drives Cscope over the real
// Linux tree; ours parses a calibrated corpus of driver sources directly,
// which is strictly more precise than a text cross-referencer).
//
// Supported constructs: struct definitions (scalar, pointer, array, embedded
// struct and function-pointer fields), typedef-style base types (u8..u64,
// dma_addr_t, ...), function definitions with declarations, assignments,
// calls, if/else, for and while loops, returns, and the expression forms
// driver DMA paths use (&x->f, x->f.g, sizeof(*p), array indexing).
// Preprocessor lines and comments are skipped.
package cminor

import "fmt"

// TokKind classifies tokens.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Line int
}

// Pos locates an AST node in its source.
type Pos struct {
	File string
	Line int
}

// String renders file:line.
func (p Pos) String() string { return fmt.Sprintf("%s:%d", p.File, p.Line) }

// lexer tokenizes one source file.
type lexer struct {
	src  string
	file string
	pos  int
	line int
	toks []Token
}

// Lex tokenizes a source file, skipping comments and preprocessor lines.
func Lex(file, src string) ([]Token, error) {
	l := &lexer{src: src, file: file, line: 1}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			l.skipLine()
		case c == '/' && l.peek(1) == '/':
			l.skipLine()
		case c == '/' && l.peek(1) == '*':
			if err := l.skipBlockComment(); err != nil {
				return nil, err
			}
		case isIdentStart(c):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexChar(); err != nil {
				return nil, err
			}
		default:
			l.lexPunct()
		}
	}
	l.toks = append(l.toks, Token{Kind: TokEOF, Line: l.line})
	return l.toks, nil
}

func (l *lexer) peek(n int) byte {
	if l.pos+n < len(l.src) {
		return l.src[l.pos+n]
	}
	return 0
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		// Line continuations keep preprocessor definitions on one logical
		// line.
		if l.src[l.pos] == '\\' && l.peek(1) == '\n' {
			l.pos += 2
			l.line++
			continue
		}
		l.pos++
	}
}

func (l *lexer) skipBlockComment() error {
	start := l.line
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '\n' {
			l.line++
		}
		if l.src[l.pos] == '*' && l.peek(1) == '/' {
			l.pos += 2
			return nil
		}
		l.pos++
	}
	return fmt.Errorf("%s:%d: unterminated block comment", l.file, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, Token{Kind: TokIdent, Text: l.src[start:l.pos], Line: l.line})
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (isIdentCont(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++ // accepts hex, suffixes (UL), etc.
	}
	l.toks = append(l.toks, Token{Kind: TokNumber, Text: l.src[start:l.pos], Line: l.line})
}

func (l *lexer) lexString() error {
	start, startLine := l.pos, l.line
	l.pos++
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '"':
			l.pos++
			l.toks = append(l.toks, Token{Kind: TokString, Text: l.src[start:l.pos], Line: startLine})
			return nil
		case '\n':
			return fmt.Errorf("%s:%d: newline in string literal", l.file, startLine)
		default:
			l.pos++
		}
	}
	return fmt.Errorf("%s:%d: unterminated string literal", l.file, startLine)
}

func (l *lexer) lexChar() error {
	start, startLine := l.pos, l.line
	l.pos++
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case '\\':
			l.pos += 2
		case '\'':
			l.pos++
			l.toks = append(l.toks, Token{Kind: TokChar, Text: l.src[start:l.pos], Line: startLine})
			return nil
		default:
			l.pos++
		}
	}
	return fmt.Errorf("%s:%d: unterminated char literal", l.file, startLine)
}

// multi-byte punctuation, longest first.
var puncts = []string{
	"->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "|=", "&=", "^=", "%=", "++", "--", "...",
}

func (l *lexer) lexPunct() {
	for _, p := range puncts {
		if len(l.src)-l.pos >= len(p) && l.src[l.pos:l.pos+len(p)] == p {
			l.toks = append(l.toks, Token{Kind: TokPunct, Text: p, Line: l.line})
			l.pos += len(p)
			return
		}
	}
	l.toks = append(l.toks, Token{Kind: TokPunct, Text: string(l.src[l.pos]), Line: l.line})
	l.pos++
}
