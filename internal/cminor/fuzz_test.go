package cminor

import (
	"strings"
	"testing"
)

// FuzzParse hammers the C front end: whatever bytes come in, the parser must
// return cleanly (source position in errors, no panics), and accepted inputs
// must survive a re-parse (the corpus generator depends on determinism).
func FuzzParse(f *testing.F) {
	seeds := []string{
		driverSnippet,
		"struct s { int a; };",
		"int f(void) { return 0; }",
		"static void g(struct sk_buff *skb) { dma_map_single(d, skb->data, 1, X); }",
		"struct s { void (*cb)(int); char b[8]; };\nint f(struct s *p) { dma_map_single(d, &p->b, 8, X); return 0; }",
		"#define X 1\nint f(void) { /* c */ return 'a' + 1; }",
		"int f(int x) { switch (x) { case 1: x++; break; default: x--; } do { x++; } while (x < 0); return x; }",
		"", "{", "}", ";;;", "struct", "int f(", `"unterminated`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, err := Parse("fuzz.c", src)
		if err != nil {
			if !strings.Contains(err.Error(), "fuzz.c") {
				t.Errorf("error without source position: %v", err)
			}
			return
		}
		// Accepted input: walking must not panic and a re-parse must agree.
		for _, fn := range file.Funcs {
			WalkStmts(fn.Body, func(Stmt) {}, func(e Expr) { _ = e.ExprPos() })
		}
		again, err := Parse("fuzz.c", src)
		if err != nil {
			t.Errorf("accepted once, rejected on re-parse: %v", err)
			return
		}
		if len(again.Funcs) != len(file.Funcs) || len(again.Structs) != len(file.Structs) {
			t.Error("re-parse produced different shape")
		}
	})
}
