package cminor

import "testing"

func TestParseSwitchAndDoWhile(t *testing.T) {
	src := `
static int irq_handler(struct device *dev, int cause)
{
	int handled;
	struct sk_buff *skb;
	handled = 0;
	switch (cause) {
	case 1:
		skb = netdev_alloc_skb(dev, 2048);
		dma_map_single(dev, skb->data, 2048, DMA_FROM_DEVICE);
		handled = 1;
		break;
	case 2:
	case 3:
		handled = 2;
		break;
	default:
		handled = -1;
	}
	do {
		handled++;
	} while (handled < 0);
	return handled;
}
`
	f, err := Parse("switch.c", src)
	if err != nil {
		t.Fatal(err)
	}
	// The dma-map call inside the switch arm is reachable by the walker.
	found := false
	WalkStmts(f.Funcs[0].Body, nil, func(e Expr) {
		if c, ok := e.(*Call); ok && c.FunName() == "dma_map_single" {
			found = true
		}
	})
	if !found {
		t.Fatal("dma_map_single inside switch arm not walked")
	}
	// And the provenance machinery still sees the assignment in the arm.
	rhs := AssignmentsToHelper(f.Funcs[0], "skb")
	if len(rhs) != 1 {
		t.Fatalf("assignments to skb = %d", len(rhs))
	}
}

// AssignmentsToHelper mirrors spade.AssignmentsTo without the import cycle.
func AssignmentsToHelper(fn *FuncDef, name string) []Expr {
	var out []Expr
	WalkStmts(fn.Body, func(s Stmt) {
		if d, ok := s.(*DeclStmt); ok && d.Name == name && d.Init != nil {
			out = append(out, d.Init)
		}
	}, func(e Expr) {
		if a, ok := e.(*Assign); ok && a.Op == "=" {
			if id, ok := a.LHS.(*Ident); ok && id.Name == name {
				out = append(out, a.RHS)
			}
		}
	})
	return out
}

func TestFunctionPrototype(t *testing.T) {
	src := `
static int helper(struct device *dev, void *p);

static int user(struct device *dev)
{
	helper(dev, 0);
	return 0;
}

static int helper(struct device *dev, void *p)
{
	return 0;
}
`
	f, err := Parse("proto.c", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 3 {
		t.Fatalf("funcs = %d (prototype + 2 bodies)", len(f.Funcs))
	}
	if f.Funcs[0].Body != nil {
		t.Error("prototype has a body")
	}
}

func TestSwitchErrors(t *testing.T) {
	bad := []string{
		"int f(int x) { switch (x) { case 1 } }",
		"int f(int x) { switch (x) { ",
		"int f(int x) { do { x++; } (x < 3); }",
	}
	for _, src := range bad {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
