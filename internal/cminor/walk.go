package cminor

// WalkExpr visits e and every sub-expression, pre-order.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *Call:
		WalkExpr(v.Fun, visit)
		for _, a := range v.Args {
			WalkExpr(a, visit)
		}
	case *Assign:
		WalkExpr(v.LHS, visit)
		WalkExpr(v.RHS, visit)
	case *Unary:
		WalkExpr(v.X, visit)
	case *Binary:
		WalkExpr(v.X, visit)
		WalkExpr(v.Y, visit)
	case *Member:
		WalkExpr(v.X, visit)
	case *Index:
		WalkExpr(v.X, visit)
		WalkExpr(v.I, visit)
	case *Sizeof:
		WalkExpr(v.Arg, visit)
	}
}

// WalkStmts visits every statement (pre-order, into nested blocks) and every
// expression they contain.
func WalkStmts(body []Stmt, visitStmt func(Stmt), visitExpr func(Expr)) {
	for _, s := range body {
		if s == nil {
			continue
		}
		if visitStmt != nil {
			visitStmt(s)
		}
		switch v := s.(type) {
		case *DeclStmt:
			if visitExpr != nil {
				WalkExpr(v.Init, visitExpr)
			}
		case *ExprStmt:
			if visitExpr != nil {
				WalkExpr(v.X, visitExpr)
			}
		case *IfStmt:
			if visitExpr != nil {
				WalkExpr(v.Cond, visitExpr)
			}
			WalkStmts(v.Then, visitStmt, visitExpr)
			WalkStmts(v.Else, visitStmt, visitExpr)
		case *LoopStmt:
			WalkStmts(v.Body, visitStmt, visitExpr)
		case *SwitchStmt:
			if visitExpr != nil {
				WalkExpr(v.Cond, visitExpr)
			}
			WalkStmts(v.Body, visitStmt, visitExpr)
		case *ReturnStmt:
			if visitExpr != nil {
				WalkExpr(v.X, visitExpr)
			}
		}
	}
}
