// Package workload drives the simulated victim with the mixed load the
// paper used to evaluate D-KASAN (§4.2): "we cloned a large project from a
// Git repository and compiled it concurrently with light network traffic
// (i.e., ICMP ping)". The build side exercises exec/ELF loading, inode and
// socket allocation, and associative-array bookkeeping; the network side
// keeps NIC DMA mappings churning. The interleaving puts fresh kernel
// objects on device-mapped slab pages — the random type (d) exposures of
// Fig. 3.
package workload

import (
	"fmt"

	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

// Config scales the workload.
type Config struct {
	// Iterations is the number of build+ping rounds.
	Iterations int
	// NICDevice is the (benign) NIC the ping traffic flows through.
	NICDevice iommu.DeviceID
}

// Result summarizes one run.
type Result struct {
	Builds, Pings  int
	ObjectsAlloced int
}

// The Fig. 3 allocation sites: function+offset of the allocators whose
// objects were found on DMA-mapped pages, with their sizes.
var buildSites = []struct {
	site string
	size uint64
}{
	{"__alloc_skb+0xe0/0x3f0", 512},
	{"load_elf_phdrs+0xbf/0x130", 512},
	{"__do_execve_file.isra.0+0x287/0x1080", 512},
	{"sock_alloc_inode+0x4f/0x120", 64},
	{"assoc_array_insert+0xa9/0x7e0", 328},
}

// Run executes the workload against a booted system with an attached NIC.
func Run(sys *core.System, nic *netstack.NIC, cfg Config) (*Result, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	res := &Result{}
	cpu := nic.CPU

	// The driver keeps kmalloc'd I/O buffers mapped while the "build" runs:
	// a bidirectional admin block (512 class), a write-mapped RX copybreak
	// buffer (512 class), and a small descriptor (64 class). These are the
	// mappings whose pages the build's objects land on.
	type ioBuf struct {
		kva layout.Addr
		va  iommu.IOVA
		n   uint64
		dir dma.Direction
	}
	var mapped []ioBuf
	mapBuf := func(n uint64, site string, dir dma.Direction) error {
		kva, err := sys.Mem.Slab.Kmalloc(cpu, n, site)
		if err != nil {
			return err
		}
		va, err := sys.Mapper.MapSingle(nic.Dev, kva, n, dir)
		if err != nil {
			return err
		}
		mapped = append(mapped, ioBuf{kva, va, n, dir})
		return nil
	}
	if err := mapBuf(512, "nic_admin_block", dma.Bidirectional); err != nil {
		return nil, err
	}
	if err := mapBuf(512, "rx_copybreak_buf", dma.FromDevice); err != nil {
		return nil, err
	}
	if err := mapBuf(64, "rx_small_desc", dma.FromDevice); err != nil {
		return nil, err
	}

	for round := 0; round < cfg.Iterations; round++ {
		// "git clone + make": bursts of kernel allocations from the Fig. 3
		// sites. Objects of the 512/64 classes share slab pages with the
		// driver's mapped buffers — the exposures D-KASAN reports.
		var transient []layout.Addr
		for i := range buildSites {
			// Rotate the site order per round: build phases interleave, so
			// every allocator gets turns early in a slab's lifetime.
			bs := buildSites[(i+round)%len(buildSites)]
			for k := 0; k < 2+i%2; k++ {
				a, err := sys.Mem.Slab.Kmalloc(cpu, bs.size, bs.site)
				if err != nil {
					return nil, err
				}
				transient = append(transient, a)
				res.ObjectsAlloced++
			}
		}
		res.Builds++

		// Light network traffic: a ping (RX in, echo out).
		slot := round % len(nic.RXRing())
		if nic.RXRing()[slot].Ready {
			d := nic.RXRing()[slot]
			if err := sys.Bus.Write(nic.Dev, d.IOVA, []byte("icmp-echo-request")); err != nil {
				return nil, fmt.Errorf("workload: ping rx: %w", err)
			}
			if err := nic.ReceiveOn(slot, 17, netstack.ProtoUDP, uint32(round)); err != nil {
				return nil, fmt.Errorf("workload: ping deliver: %w", err)
			}
			res.Pings++
		}

		// Half the transient objects are freed each round (compile jobs
		// finishing), keeping slabs churning.
		for i, a := range transient {
			if i%2 == 0 {
				if err := sys.Mem.Slab.Kfree(a); err != nil {
					return nil, err
				}
			}
		}
	}

	// Teardown: unmap the driver buffers.
	for _, b := range mapped {
		if err := sys.Mapper.UnmapSingle(nic.Dev, b.va, b.n, b.dir); err != nil {
			return nil, err
		}
		if err := sys.Mem.Slab.Kfree(b.kva); err != nil {
			return nil, err
		}
	}
	return res, nil
}
