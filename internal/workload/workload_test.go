package workload

import (
	"testing"

	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func TestRunDefaults(t *testing.T) {
	sys, err := core.NewSystem(core.Config{Seed: 3, KASLR: true, Mode: iommu.Deferred})
	if err != nil {
		t.Fatal(err)
	}
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sys, nic, Config{NICDevice: 1}) // Iterations defaulted
	if err != nil {
		t.Fatal(err)
	}
	if res.Builds != 8 {
		t.Errorf("default Builds = %d, want 8", res.Builds)
	}
	if res.Pings == 0 || res.ObjectsAlloced == 0 {
		t.Errorf("result = %+v", res)
	}
	// The workload tears its long-lived mappings down; what remains is the
	// RX ring minus the slots the pings consumed (not refilled).
	want := len(nic.RXRing()) - res.Pings
	if live := sys.Mapper.Live(); live != want {
		t.Errorf("live mappings = %d, want %d", live, want)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		sys, err := core.NewSystem(core.Config{Seed: 5, KASLR: true, Mode: iommu.Deferred})
		if err != nil {
			t.Fatal(err)
		}
		nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sys, nic, Config{Iterations: 6, NICDevice: 1})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestFig3SitesPresent(t *testing.T) {
	want := map[string]uint64{
		"__alloc_skb+0xe0/0x3f0":               512,
		"load_elf_phdrs+0xbf/0x130":            512,
		"__do_execve_file.isra.0+0x287/0x1080": 512,
		"sock_alloc_inode+0x4f/0x120":          64,
		"assoc_array_insert+0xa9/0x7e0":        328,
	}
	if len(buildSites) != len(want) {
		t.Fatalf("buildSites = %d entries", len(buildSites))
	}
	for _, bs := range buildSites {
		size, ok := want[bs.site]
		if !ok || size != bs.size {
			t.Errorf("site %q size %d not the Fig. 3 set", bs.site, bs.size)
		}
	}
}
