package layout

import (
	"math/rand"
	"testing"
)

// leakWords builds a plausible leaked-page word mix: noise, an init_net
// pointer, and a struct page pointer for the given pfn.
func leakWords(l *Layout, pfn PFN, rng *rand.Rand) []uint64 {
	initNet, _ := l.SymbolKVA("init_net")
	words := []uint64{
		0, 0xdeadbeef, rng.Uint64(), // noise
		uint64(initNet),
		uint64(l.PFNToStructPage(pfn)),
		rng.Uint64() & 0x7fffffffffff, // user-space-looking noise
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return words
}

func TestInferTextBase(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 64 << 20})
		in := NewInferencer(l.Symbols())
		initNet, _ := l.SymbolKVA("init_net")
		if n := in.ObserveWords([]uint64{uint64(initNet)}); n != 1 {
			t.Fatalf("seed %d: init_net pointer not consumed", seed)
		}
		got, err := in.TextBase()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != l.TextBase {
			t.Fatalf("seed %d: recovered text base %#x, want %#x", seed, uint64(got), uint64(l.TextBase))
		}
	}
}

func TestInferVmemmapBase(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 64 << 20})
		in := NewInferencer(l.Symbols())
		sp := l.PFNToStructPage(1234)
		in.ObserveWords([]uint64{uint64(sp)})
		got, err := in.VmemmapBase()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got != l.VmemmapBase {
			t.Fatalf("seed %d: recovered vmemmap base %#x, want %#x", seed, uint64(got), uint64(l.VmemmapBase))
		}
		pfn, err := in.PFNFromStructPage(sp)
		if err != nil || pfn != 1234 {
			t.Fatalf("seed %d: PFNFromStructPage = %d, %v", seed, pfn, err)
		}
	}
}

func TestInferPageOffsetBase(t *testing.T) {
	l := New(Config{KASLR: true, Seed: 3, PhysBytes: 64 << 20})
	in := NewInferencer(l.Symbols())
	pfn := PFN(777)
	if err := in.ObserveKVAPFNPair(l.PFNToKVA(pfn), pfn); err != nil {
		t.Fatal(err)
	}
	got, err := in.PageOffsetBase()
	if err != nil {
		t.Fatal(err)
	}
	if got != l.PageOffsetBase {
		t.Fatalf("recovered page_offset_base %#x, want %#x", uint64(got), uint64(l.PageOffsetBase))
	}
	kva, err := in.KVAFromPFN(pfn + 1)
	if err != nil {
		t.Fatal(err)
	}
	if kva != l.PFNToKVA(pfn+1) {
		t.Fatalf("KVAFromPFN = %#x, want %#x", uint64(kva), uint64(l.PFNToKVA(pfn+1)))
	}
}

func TestObserveKVAPFNPairRejections(t *testing.T) {
	l := New(Config{KASLR: true, Seed: 3, PhysBytes: 64 << 20})
	in := NewInferencer(l.Symbols())
	if err := in.ObserveKVAPFNPair(VmallocStart, 0); err == nil {
		t.Error("accepted non-direct-map pointer")
	}
	// A wrong PFN pairing yields a misaligned base and must be rejected.
	if err := in.ObserveKVAPFNPair(l.PFNToKVA(10)+8, 10); err == nil {
		t.Error("accepted pair implying misaligned base")
	}
}

func TestInferFullChainFromMixedLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); seed < 16; seed++ {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 64 << 20})
		in := NewInferencer(l.Symbols())
		pfn := PFN(rng.Intn(int(l.MaxPFN())))
		in.ObserveWords(leakWords(l, pfn, rng))
		if _, err := in.TextBase(); err != nil {
			t.Fatalf("seed %d: text base not recovered from mixed leak", seed)
		}
		if _, err := in.VmemmapBase(); err != nil {
			t.Fatalf("seed %d: vmemmap base not recovered from mixed leak", seed)
		}
		// Complete requires page_offset_base too.
		if in.Complete() {
			t.Fatalf("seed %d: Complete() true before page_offset_base known", seed)
		}
		if err := in.ObserveKVAPFNPair(l.PFNToKVA(pfn), pfn); err != nil {
			t.Fatal(err)
		}
		if !in.Complete() {
			t.Fatalf("seed %d: Complete() false after all bases recovered", seed)
		}
		// Recovered gadget addressing matches ground truth.
		want, _ := l.SymbolKVA("commit_creds")
		got, err := in.SymbolKVA("commit_creds")
		if err != nil || got != want {
			t.Fatalf("seed %d: SymbolKVA = %#x, %v; want %#x", seed, uint64(got), err, uint64(want))
		}
	}
}

func TestInferencerErrorsBeforeObservation(t *testing.T) {
	l := New(Config{PhysBytes: 16 << 20})
	in := NewInferencer(l.Symbols())
	if _, err := in.TextBase(); err == nil {
		t.Error("TextBase succeeded with no observations")
	}
	if _, err := in.VmemmapBase(); err == nil {
		t.Error("VmemmapBase succeeded with no observations")
	}
	if _, err := in.PageOffsetBase(); err == nil {
		t.Error("PageOffsetBase succeeded with no observations")
	}
	if _, err := in.KVAFromPFN(0); err == nil {
		t.Error("KVAFromPFN succeeded with no observations")
	}
	if _, err := in.SymbolKVA("init_net"); err == nil {
		t.Error("SymbolKVA succeeded with no observations")
	}
	if _, err := in.PFNFromStructPage(VmemmapStart); err == nil {
		t.Error("PFNFromStructPage succeeded with no observations")
	}
}

func TestInferIgnoresNoise(t *testing.T) {
	l := New(Config{KASLR: true, Seed: 9, PhysBytes: 64 << 20})
	in := NewInferencer(l.Symbols())
	noise := []uint64{0, 1, 0xffffffffffffffff, 0x00007fffdeadbeef, uint64(KasanStart) + 64}
	if n := in.ObserveWords(noise); n != 0 {
		t.Errorf("noise words consumed: %d", n)
	}
	// A text pointer that is NOT init_net (wrong low21) must not pin the base.
	kfree, _ := l.SymbolKVA("kfree_skb")
	in.ObserveWords([]uint64{uint64(kfree)})
	if _, err := in.TextBase(); err == nil {
		low21a, _ := l.Symbols().Low21("kfree_skb")
		low21b, _ := l.Symbols().Low21("init_net")
		if low21a != low21b {
			t.Error("non-init_net text pointer pinned the text base")
		}
	}
}
