package layout

import (
	"testing"
	"testing/quick"
)

func TestTable1Rows(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table1 has %d rows, want 6", len(rows))
	}
	want := []struct {
		start Addr
		size  string
	}{
		{DirectMapStart, "64 TB"},
		{VmallocStart, "32 TB"},
		{VmemmapStart, "1 TB"},
		{KasanStart, "16 TB"},
		{TextStart, "512 MB"},
		{ModuleStart, "1520 MB"},
	}
	for i, w := range want {
		if rows[i].Start != w.start || rows[i].Size != w.size {
			t.Errorf("row %d = {%#x %s}, want {%#x %s}", i, uint64(rows[i].Start), rows[i].Size, uint64(w.start), w.size)
		}
	}
}

func TestNewWithoutKASLRUsesArchitecturalBases(t *testing.T) {
	l := New(Config{KASLR: false, PhysBytes: 64 << 20})
	if l.TextBase != TextStart {
		t.Errorf("TextBase = %#x, want %#x", uint64(l.TextBase), uint64(TextStart))
	}
	if l.PageOffsetBase != DirectMapStart {
		t.Errorf("PageOffsetBase = %#x, want %#x", uint64(l.PageOffsetBase), uint64(DirectMapStart))
	}
	if l.VmemmapBase != VmemmapStart {
		t.Errorf("VmemmapBase = %#x, want %#x", uint64(l.VmemmapBase), uint64(VmemmapStart))
	}
}

func TestKASLRAlignmentInvariants(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 64 << 20})
		if l.TextBase&(TextAlign-1) != 0 {
			t.Fatalf("seed %d: TextBase %#x not 2MiB aligned", seed, uint64(l.TextBase))
		}
		if l.PageOffsetBase&(DirectMapAlign-1) != 0 {
			t.Fatalf("seed %d: PageOffsetBase %#x not 1GiB aligned", seed, uint64(l.PageOffsetBase))
		}
		if l.VmemmapBase&(DirectMapAlign-1) != 0 {
			t.Fatalf("seed %d: VmemmapBase %#x not 1GiB aligned", seed, uint64(l.VmemmapBase))
		}
		if l.TextBase < TextStart || l.TextBase >= TextStart+TextSpan {
			t.Fatalf("seed %d: TextBase %#x outside text window", seed, uint64(l.TextBase))
		}
		if l.PageOffsetBase < DirectMapStart || l.PageOffsetBase > DirectMapEnd {
			t.Fatalf("seed %d: PageOffsetBase outside direct-map region", seed)
		}
		if l.VmemmapBase < VmemmapStart || l.VmemmapBase > VmemmapEnd {
			t.Fatalf("seed %d: VmemmapBase outside vmemmap region", seed)
		}
	}
}

func TestKASLRVariesWithSeed(t *testing.T) {
	a := New(Config{KASLR: true, Seed: 1, PhysBytes: 64 << 20})
	b := New(Config{KASLR: true, Seed: 2, PhysBytes: 64 << 20})
	if a.TextBase == b.TextBase && a.PageOffsetBase == b.PageOffsetBase && a.VmemmapBase == b.VmemmapBase {
		t.Error("different seeds produced identical layouts")
	}
	c := New(Config{KASLR: true, Seed: 1, PhysBytes: 64 << 20})
	if a.TextBase != c.TextBase || a.PageOffsetBase != c.PageOffsetBase {
		t.Error("same seed produced different layouts; boot must be deterministic")
	}
}

func TestTranslationRoundTrips(t *testing.T) {
	l := New(Config{KASLR: true, Seed: 7, PhysBytes: 32 << 20})
	for _, pfn := range []PFN{0, 1, 17, l.MaxPFN() - 1} {
		kva := l.PFNToKVA(pfn)
		got, err := l.KVAToPFN(kva)
		if err != nil {
			t.Fatalf("KVAToPFN(%#x): %v", uint64(kva), err)
		}
		if got != pfn {
			t.Errorf("round trip PFN %d -> %d", pfn, got)
		}
		sp := l.PFNToStructPage(pfn)
		gotPFN, err := l.StructPageToPFN(sp)
		if err != nil {
			t.Fatalf("StructPageToPFN(%#x): %v", uint64(sp), err)
		}
		if gotPFN != pfn {
			t.Errorf("struct page round trip PFN %d -> %d", pfn, gotPFN)
		}
		back, err := l.StructPageToKVA(sp)
		if err != nil {
			t.Fatalf("StructPageToKVA: %v", err)
		}
		if back != kva {
			t.Errorf("StructPageToKVA(%#x) = %#x, want %#x", uint64(sp), uint64(back), uint64(kva))
		}
	}
}

func TestKVAToPhysRejectsOutOfRange(t *testing.T) {
	l := New(Config{PhysBytes: 16 << 20})
	if _, err := l.KVAToPhys(l.PageOffsetBase + Addr(l.PhysBytes)); err == nil {
		t.Error("KVAToPhys accepted first address past backed memory")
	}
	if _, err := l.KVAToPhys(l.PageOffsetBase - 1); err == nil {
		t.Error("KVAToPhys accepted address below direct map base")
	}
	if _, err := l.KVAToPhys(VmallocStart); err == nil {
		t.Error("KVAToPhys accepted vmalloc address")
	}
}

func TestStructPageToPFNRejectsMisaligned(t *testing.T) {
	l := New(Config{PhysBytes: 16 << 20})
	if _, err := l.StructPageToPFN(l.VmemmapBase + 1); err == nil {
		t.Error("accepted misaligned struct page address")
	}
	if _, err := l.StructPageToPFN(l.VmemmapBase - StructPageSize); err == nil {
		t.Error("accepted struct page address below base")
	}
	beyond := l.PFNToStructPage(l.MaxPFN())
	if _, err := l.StructPageToPFN(beyond); err == nil {
		t.Error("accepted struct page address beyond backed memory")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		a    Addr
		want Region
	}{
		{DirectMapStart, RegionDirectMap},
		{DirectMapStart + (32 << 40), RegionDirectMap},
		{VmallocStart + 4096, RegionVmalloc},
		{VmemmapStart + 64, RegionVmemmap},
		{KasanStart + 1, RegionKasan},
		{TextStart + 0x1a8c7c0, RegionText},
		{0x00007f0000000000, RegionNone},
		{0, RegionNone},
	}
	for _, c := range cases {
		if got := Classify(c.a); got != c.want {
			t.Errorf("Classify(%#x) = %v, want %v", uint64(c.a), got, c.want)
		}
	}
}

func TestClassifyKASLRTextAddresses(t *testing.T) {
	// Any KASLR draw keeps runtime symbol addresses classifiable as text.
	for seed := int64(0); seed < 32; seed++ {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 16 << 20})
		kva, err := l.SymbolKVA("init_net")
		if err != nil {
			t.Fatal(err)
		}
		if Classify(kva) != RegionText {
			t.Fatalf("seed %d: init_net at %#x not classified as text", seed, uint64(kva))
		}
	}
}

func TestPageHelpers(t *testing.T) {
	if PageOffsetOf(0xffff888000001abc) != 0xabc {
		t.Error("PageOffsetOf wrong")
	}
	if PageAlignDown(0xffff888000001abc) != 0xffff888000001000 {
		t.Error("PageAlignDown wrong")
	}
	if PageAlignUp(1) != PageSize || PageAlignUp(PageSize) != PageSize || PageAlignUp(PageSize+1) != 2*PageSize {
		t.Error("PageAlignUp wrong")
	}
	if PageAlignUp(0) != 0 {
		t.Error("PageAlignUp(0) should be 0")
	}
}

func TestSymbolTable(t *testing.T) {
	l := New(Config{PhysBytes: 16 << 20})
	syms := l.Symbols()
	if _, err := syms.Offset("init_net"); err != nil {
		t.Fatalf("init_net missing: %v", err)
	}
	if _, err := syms.Offset("no_such_symbol"); err == nil {
		t.Error("unknown symbol did not error")
	}
	low, err := syms.Low21("init_net")
	if err != nil {
		t.Fatal(err)
	}
	off, _ := syms.Offset("init_net")
	if low != off&(TextAlign-1) {
		t.Errorf("Low21 = %#x, want %#x", low, off&(TextAlign-1))
	}
	syms.Add("my_sym", 0x1234)
	if got, _ := syms.Offset("my_sym"); got != 0x1234 {
		t.Errorf("Add/Offset = %#x", got)
	}
	names := syms.Names()
	if len(names) == 0 {
		t.Error("Names empty")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Error("Names not sorted")
		}
	}
}

// Property: low 21 bits of every symbol's runtime address are invariant under
// KASLR, the core fact §2.4 exploits.
func TestPropertyLow21Invariant(t *testing.T) {
	f := func(seed int64) bool {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 16 << 20})
		for _, name := range l.Symbols().Names() {
			kva, err := l.SymbolKVA(name)
			if err != nil {
				return false
			}
			off, _ := l.Symbols().Offset(name)
			if uint64(kva)&(TextAlign-1) != off&(TextAlign-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: KVA/PFN translation round-trips for arbitrary in-range frames and
// arbitrary KASLR draws.
func TestPropertyTranslationRoundTrip(t *testing.T) {
	f := func(seed int64, rawPFN uint32) bool {
		l := New(Config{KASLR: true, Seed: seed, PhysBytes: 128 << 20})
		pfn := PFN(uint64(rawPFN) % uint64(l.MaxPFN()))
		kva := l.PFNToKVA(pfn)
		got, err := l.KVAToPFN(kva)
		if err != nil || got != pfn {
			return false
		}
		sp := l.PFNToStructPage(pfn)
		gotSP, err := l.StructPageToPFN(sp)
		return err == nil && gotSP == pfn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
