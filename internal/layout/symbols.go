package layout

import (
	"fmt"
	"sort"
)

// SymbolTable maps kernel symbol names to their link-time offsets from the
// text base. KASLR shifts the whole image, so runtime address = TextBase +
// offset; the offset (and in particular its low 21 bits) is fixed by the
// build and assumed known to the attacker, exactly as in §2.4.
type SymbolTable struct {
	offsets map[string]uint64
	names   []string
}

// Canonical symbols of the simulated kernel image. Offsets are stable
// "link-time" values; init_net carries the role it has in the paper: a
// global network-namespace object whose address leaks through every socket.
var builtinSymbols = map[string]uint64{
	"_text":               0x000000,
	"startup_64":          0x000040,
	"commit_creds":        0x0a31c0,
	"prepare_kernel_cred": 0x0a3550,
	"kfree_skb":           0x5c0890,
	"napi_gro_receive":    0x5d2470,
	"sock_wfree":          0x5b8f10,
	"init_net":            0x1a8c7c0, // .data: global struct net
	"init_task":           0x1a12040,
	"jiffies":             0x1b04000,
	"__per_cpu_offset":    0x1a0f920,
	"system_wq":           0x1b21a08,
	"tcp_prot":            0x1a9b340,
	"dev_base_lock":       0x1aa0018,
	"skb_release_data":    0x5c0510,
	"msix_setup_entries":  0x4a7730,
	"pivot_gadget_area":   0x7f0000, // region where JOP/ROP gadgets cluster
	"__stop___ex_table":   0x1900000,
	"_etext":              0x0e01d51,
}

func defaultSymbols() *SymbolTable {
	t := &SymbolTable{offsets: make(map[string]uint64, len(builtinSymbols))}
	for n, o := range builtinSymbols {
		t.offsets[n] = o
		t.names = append(t.names, n)
	}
	sort.Strings(t.names)
	return t
}

// Offset returns the link-time offset of a symbol from the text base.
func (t *SymbolTable) Offset(name string) (uint64, error) {
	o, ok := t.offsets[name]
	if !ok {
		return 0, fmt.Errorf("layout: unknown symbol %q", name)
	}
	return o, nil
}

// Names returns all symbol names in sorted order.
func (t *SymbolTable) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Add registers an extra symbol (used by tests and by the kexec package when
// it places gadget functions).
func (t *SymbolTable) Add(name string, offset uint64) {
	if _, ok := t.offsets[name]; !ok {
		t.names = append(t.names, name)
		sort.Strings(t.names)
	}
	t.offsets[name] = offset
}

// Low21 returns the KASLR-invariant low 21 bits of a symbol's runtime
// address. Because the text base is 2 MiB aligned, these bits are identical
// at link time and at run time; matching them against a leaked pointer is how
// the attacker identifies a known symbol with high probability (§2.4).
func (t *SymbolTable) Low21(name string) (uint64, error) {
	o, err := t.Offset(name)
	if err != nil {
		return 0, err
	}
	return o & (TextAlign - 1), nil
}
