package layout

import (
	"errors"
	"fmt"
)

// Inferencer implements the attacker-side KASLR-subversion arithmetic of
// §2.4. It consumes 64-bit words leaked from DMA-readable pages (sub-page
// vulnerability type (d) leaks, frags[] arrays of TX packets, and so on) and
// recovers the randomized bases:
//
//   - the text base, by matching the KASLR-invariant low 21 bits of a known
//     symbol (the paper uses init_net, reachable from every socket);
//   - the vmemmap base, from any leaked struct page pointer, exploiting the
//     1 GiB (30-bit) alignment of vmemmap_base;
//   - the direct-map base (page_offset_base), from any (KVA, PFN) pair, or
//     from a direct-map pointer combined with a recovered vmemmap base.
//
// The Inferencer never consults the real Layout — it only sees leaked words —
// so tests can assert that recovery equals ground truth.
type Inferencer struct {
	symbols *SymbolTable

	textBase       Addr
	vmemmapBase    Addr
	pageOffsetBase Addr
	haveText       bool
	haveVmemmap    bool
	havePageOffset bool
}

// NewInferencer builds an attacker that knows the victim's kernel build
// (symbol offsets) but none of the randomized bases.
func NewInferencer(symbols *SymbolTable) *Inferencer {
	return &Inferencer{symbols: symbols}
}

// ErrNotFound is returned when the leaked words do not pin down a base.
var ErrNotFound = errors.New("layout: inference failed: no matching leaked pointer")

// ObserveWords feeds leaked 64-bit words to the inferencer, classifying each
// and updating whichever bases can be pinned down. It returns the number of
// words that contributed.
func (in *Inferencer) ObserveWords(words []uint64) int {
	used := 0
	for _, w := range words {
		if in.observe(Addr(w)) {
			used++
		}
	}
	return used
}

func (in *Inferencer) observe(a Addr) bool {
	switch Classify(a) {
	case RegionText:
		return in.observeText(a)
	case RegionVmemmap:
		return in.observeStructPage(a)
	case RegionDirectMap:
		return in.observeDirectMap(a)
	default:
		return false
	}
}

// observeDirectMap recovers page_offset_base from a leaked direct-map
// pointer using the paper's §2.4 argument: the base is 1 GiB aligned (PUD
// granularity), so the low 30 bits of the pointer are the physical offset
// unchanged by KASLR. On machines with at most 1 GiB of backed physical
// memory (all our simulated victims) that identifies the base exactly:
// base = pointer with the low 30 bits cleared.
func (in *Inferencer) observeDirectMap(a Addr) bool {
	if in.havePageOffset {
		return false
	}
	base := a &^ Addr(DirectMapAlign-1)
	if base < DirectMapStart || base > DirectMapEnd {
		return false
	}
	in.pageOffsetBase = base
	in.havePageOffset = true
	return true
}

// observeText attempts to interpret a text-region pointer as init_net. The
// low 21 bits of init_net's runtime address equal its link-time offset mod
// 2 MiB regardless of KASLR; if they match, the text base follows.
func (in *Inferencer) observeText(a Addr) bool {
	if in.haveText {
		return false
	}
	low, err := in.symbols.Low21("init_net")
	if err != nil {
		return false
	}
	if uint64(a)&(TextAlign-1) != low {
		return false
	}
	off, _ := in.symbols.Offset("init_net")
	base := a - Addr(off)
	if base < TextStart || base&(TextAlign-1) != 0 {
		return false
	}
	in.textBase = base
	in.haveText = true
	return true
}

// observeStructPage recovers vmemmap_base from a struct page pointer. Because
// vmemmap_base is 1 GiB aligned, the low 30 bits of the pointer equal
// (pfn * 64) mod 2^30; for systems below 64 GiB of RAM (pfn < 2^24) the
// product fits in 30 bits, so pfn is recovered exactly and the base follows.
func (in *Inferencer) observeStructPage(a Addr) bool {
	if in.haveVmemmap {
		return false
	}
	low30 := uint64(a) & (DirectMapAlign - 1)
	if low30%StructPageSize != 0 {
		return false
	}
	base := a - Addr(low30)
	if base < VmemmapStart || base > VmemmapEnd {
		return false
	}
	in.vmemmapBase = base
	in.haveVmemmap = true
	return true
}

// ObserveKVAPFNPair recovers page_offset_base from a leaked direct-map KVA
// whose backing PFN the attacker knows (e.g. the KVA found next to a struct
// page pointer in a frags[] entry, step 3 of Poisoned TX §5.4):
// page_offset_base = kva - pfn*4096.
func (in *Inferencer) ObserveKVAPFNPair(kva Addr, pfn PFN) error {
	if Classify(kva) != RegionDirectMap {
		return fmt.Errorf("layout: %#x is not a direct-map pointer", uint64(kva))
	}
	base := kva - Addr(uint64(pfn)*PageSize)
	if base&(DirectMapAlign-1) != 0 {
		return fmt.Errorf("layout: inferred page_offset_base %#x violates 1 GiB alignment", uint64(base))
	}
	in.pageOffsetBase = base
	in.havePageOffset = true
	return nil
}

// PFNFromStructPage translates a leaked struct page pointer to a PFN using
// the recovered vmemmap base.
func (in *Inferencer) PFNFromStructPage(a Addr) (PFN, error) {
	if !in.haveVmemmap {
		return 0, ErrNotFound
	}
	if a < in.vmemmapBase {
		return 0, fmt.Errorf("layout: %#x below inferred vmemmap base", uint64(a))
	}
	off := uint64(a - in.vmemmapBase)
	if off%StructPageSize != 0 {
		return 0, fmt.Errorf("layout: %#x not struct-page aligned", uint64(a))
	}
	return PFN(off / StructPageSize), nil
}

// KVAFromPFN translates a PFN to a direct-map KVA using the recovered
// page_offset_base. This is the final translation a malicious NIC performs
// before overwriting skb_shared_info with the address of its payload.
func (in *Inferencer) KVAFromPFN(p PFN) (Addr, error) {
	if !in.havePageOffset {
		return 0, ErrNotFound
	}
	return in.pageOffsetBase + Addr(uint64(p)*PageSize), nil
}

// SymbolKVA returns the runtime address of a symbol under the recovered text
// base, used to point ROP chain entries at gadgets.
func (in *Inferencer) SymbolKVA(name string) (Addr, error) {
	if !in.haveText {
		return 0, ErrNotFound
	}
	off, err := in.symbols.Offset(name)
	if err != nil {
		return 0, err
	}
	return in.textBase + Addr(off), nil
}

// TextBase returns the recovered text base.
func (in *Inferencer) TextBase() (Addr, error) {
	if !in.haveText {
		return 0, ErrNotFound
	}
	return in.textBase, nil
}

// VmemmapBase returns the recovered vmemmap base.
func (in *Inferencer) VmemmapBase() (Addr, error) {
	if !in.haveVmemmap {
		return 0, ErrNotFound
	}
	return in.vmemmapBase, nil
}

// PageOffsetBase returns the recovered direct-map base.
func (in *Inferencer) PageOffsetBase() (Addr, error) {
	if !in.havePageOffset {
		return 0, ErrNotFound
	}
	return in.pageOffsetBase, nil
}

// Complete reports whether all three bases needed for a compound attack have
// been recovered.
func (in *Inferencer) Complete() bool {
	return in.haveText && in.haveVmemmap && in.havePageOffset
}
