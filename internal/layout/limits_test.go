package layout

import "testing"

// Documented limitation (EXPERIMENTS.md deviation 5): direct-map base
// recovery from a single leaked pointer relies on the pointer's physical
// offset fitting in the 1 GiB alignment gap. Beyond 1 GiB of RAM, a leaked
// pointer into high memory mis-identifies the base — the attacker must fall
// back to the (KVA, PFN)-pair method, which stays exact.
func TestDirectMapInferenceLimitBeyond1GiB(t *testing.T) {
	l := New(Config{KASLR: true, Seed: 5, PhysBytes: 2 << 30}) // 2 GiB
	in := NewInferencer(l.Symbols())
	// A pointer into the second gigabyte of physical memory.
	highPFN := PFN((1 << 30) / PageSize * 3 / 2)
	leak := l.PFNToKVA(highPFN)
	in.ObserveWords([]uint64{uint64(leak)})
	got, err := in.PageOffsetBase()
	if err != nil {
		t.Fatal(err)
	}
	if got == l.PageOffsetBase {
		t.Skip("alignment coincidence; pick another PFN")
	}
	// The single-pointer method is off by a 1 GiB multiple — as documented.
	if (got-l.PageOffsetBase)%DirectMapAlign != 0 {
		t.Fatalf("error not a 1 GiB multiple: got %#x, truth %#x", uint64(got), uint64(l.PageOffsetBase))
	}
	// The pair method recovers the truth regardless of RAM size.
	in2 := NewInferencer(l.Symbols())
	if err := in2.ObserveKVAPFNPair(leak, highPFN); err != nil {
		t.Fatal(err)
	}
	exact, err := in2.PageOffsetBase()
	if err != nil || exact != l.PageOffsetBase {
		t.Fatalf("pair method = %#x, %v; want %#x", uint64(exact), err, uint64(l.PageOffsetBase))
	}
}
