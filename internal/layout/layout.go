// Package layout models the x86-64 Linux kernel virtual memory layout and
// KASLR (kernel address space layout randomization), as described in §2.4 and
// Table 1 of the paper.
//
// The package provides:
//
//   - the fixed region table of Table 1 (direct map, vmalloc, vmemmap, KASAN
//     shadow, kernel text, modules);
//   - KASLR randomization of the region bases with the architectural
//     alignments the paper relies on (2 MiB for the kernel text, 1 GiB for
//     the direct map and the virtual memory map);
//   - translation between kernel virtual addresses (KVA), page frame numbers
//     (PFN), and struct page addresses in the virtual memory map;
//   - a kernel symbol table (including an init_net-style globally allocated
//     network namespace object) used to model pointer leaks;
//   - pointer classification, the first step of the KASLR-subversion
//     procedure of §2.4.
//
// All addresses are simulated: they are plain uint64 values interpreted
// against this layout, never dereferenced as host pointers.
package layout

import (
	"fmt"
	"math/rand"
)

// Addr is a simulated 64-bit kernel virtual address.
type Addr uint64

// PFN is a page frame number of a simulated physical page.
type PFN uint64

const (
	// PageSize is the base translation granule of both the MMU and the
	// IOMMU. The sub-page vulnerability exists precisely because protection
	// cannot be finer than this.
	PageSize  = 4096
	PageShift = 12
	PageMask  = PageSize - 1

	// StructPageSize is sizeof(struct page) on x86-64 Linux.
	StructPageSize = 64
)

// Architectural region boundaries from Table 1 of the paper
// (Documentation/x86/x86_64/mm.rst for the 4-level page table layout).
const (
	DirectMapStart Addr = 0xffff888000000000
	DirectMapEnd   Addr = 0xffffc87fffffffff // 64 TiB
	VmallocStart   Addr = 0xffffc90000000000
	VmallocEnd     Addr = 0xffffe8ffffffffff // 32 TiB
	VmemmapStart   Addr = 0xffffea0000000000
	VmemmapEnd     Addr = 0xffffeaffffffffff // 1 TiB
	KasanStart     Addr = 0xffffec0000000000
	KasanEnd       Addr = 0xfffffbffffffffff // 16 TiB
	TextStart      Addr = 0xffffffff80000000
	TextEnd        Addr = 0xffffffffffffffff // 512 MiB window
	ModuleStart    Addr = 0xffffffffa0000000
	ModuleEnd      Addr = 0xffffffffffffffff // 1520 MiB window
)

// Alignment constraints of the KASLR randomization procedure (§2.4).
const (
	// TextAlign is the 2 MiB alignment of the randomized kernel text base:
	// the lowest 21 bits of text addresses are never modified by KASLR.
	TextAlign = 1 << 21
	// DirectMapAlign is the 1 GiB alignment (PUD granularity) of the
	// randomized direct-map and vmemmap bases: the lowest 30 bits are never
	// modified by KASLR.
	DirectMapAlign = 1 << 30

	// TextSpan is the size of the kernel text mapping window (512 MiB).
	TextSpan = 512 << 20
)

// Region identifies which Table 1 region a kernel virtual address falls in.
type Region int

const (
	RegionNone Region = iota
	RegionDirectMap
	RegionVmalloc
	RegionVmemmap
	RegionKasan
	RegionText
	RegionModule
)

// String returns the region description used in Table 1.
func (r Region) String() string {
	switch r {
	case RegionDirectMap:
		return "direct map of phys memory (page_offset_base)"
	case RegionVmalloc:
		return "vmalloc/ioremap space (vmalloc_base)"
	case RegionVmemmap:
		return "virtual memory map (vmemmap_base)"
	case RegionKasan:
		return "KASAN shadow memory"
	case RegionText:
		return "kernel text mapping (physical address 0)"
	case RegionModule:
		return "module mapping space"
	default:
		return "none"
	}
}

// RegionRow is one row of Table 1.
type RegionRow struct {
	Start Addr
	End   Addr
	Size  string
	Desc  string
}

// Table1 returns the architectural region table exactly as the paper's
// Table 1 lists it. The table is independent of KASLR; KASLR only picks the
// bases *within* these ranges.
func Table1() []RegionRow {
	return []RegionRow{
		{DirectMapStart, DirectMapEnd, "64 TB", RegionDirectMap.String()},
		{VmallocStart, VmallocEnd, "32 TB", RegionVmalloc.String()},
		{VmemmapStart, VmemmapEnd, "1 TB", RegionVmemmap.String()},
		{KasanStart, KasanEnd, "16 TB", RegionKasan.String()},
		{TextStart, TextEnd, "512 MB", RegionText.String()},
		{ModuleStart, ModuleEnd, "1520 MB", RegionModule.String()},
	}
}

// Classify reports which layout region the address belongs to. Classification
// only depends on the architectural ranges, not on the KASLR bases, which is
// why a malicious device can perform it without any prior knowledge (§2.4:
// "text addresses always appear in the kernel text mapping range and are
// therefore easy to detect").
func Classify(a Addr) Region {
	switch {
	case a >= ModuleStart && a >= TextStart && a < TextStart+TextSpan:
		// Text and module windows overlap numerically; prefer text within
		// its 512 MiB window.
		return RegionText
	case a >= TextStart && a < TextStart+TextSpan:
		return RegionText
	case a >= ModuleStart:
		return RegionModule
	case a >= DirectMapStart && a <= DirectMapEnd:
		return RegionDirectMap
	case a >= VmallocStart && a <= VmallocEnd:
		return RegionVmalloc
	case a >= VmemmapStart && a <= VmemmapEnd:
		return RegionVmemmap
	case a >= KasanStart && a <= KasanEnd:
		return RegionKasan
	default:
		return RegionNone
	}
}

// Config controls layout construction.
type Config struct {
	// KASLR enables base randomization. When false, the bases are the
	// architectural region starts (like booting with nokaslr).
	KASLR bool
	// Seed drives the randomization deterministically.
	Seed int64
	// PhysBytes is the amount of simulated physical memory; it bounds the
	// portion of the direct map and vmemmap that is actually backed.
	PhysBytes uint64
}

// Layout is one boot's realized virtual memory layout: the randomized (or
// default) bases plus the translation functions between KVA, PFN and struct
// page addresses.
type Layout struct {
	PageOffsetBase Addr // base of the direct map (page_offset_base)
	VmallocBase    Addr // base of vmalloc space (vmalloc_base)
	VmemmapBase    Addr // base of the virtual memory map (vmemmap_base)
	TextBase       Addr // base of the kernel text mapping
	PhysBytes      uint64
	KASLR          bool

	symbols *SymbolTable
}

// New builds a layout for one simulated boot. With KASLR enabled the bases
// are randomized within their Table 1 ranges honoring the 2 MiB (text) and
// 1 GiB (direct map, vmemmap) alignments; the low 21/30 bits of the bases are
// therefore always zero, which is the weakness §2.4 exploits.
func New(cfg Config) *Layout {
	l := &Layout{
		PageOffsetBase: DirectMapStart,
		VmallocBase:    VmallocStart,
		VmemmapBase:    VmemmapStart,
		TextBase:       TextStart,
		PhysBytes:      cfg.PhysBytes,
		KASLR:          cfg.KASLR,
	}
	if l.PhysBytes == 0 {
		l.PhysBytes = 256 << 20
	}
	if cfg.KASLR {
		rng := rand.New(rand.NewSource(cfg.Seed))
		// Text: 512 MiB window, 2 MiB step. Keep headroom for the text
		// image itself (64 MiB).
		steps := int64((TextSpan - (64 << 20)) / TextAlign)
		l.TextBase = TextStart + Addr(rng.Int63n(steps))*TextAlign
		// Direct map: randomize within the first 8 TiB of the 64 TiB
		// region at 1 GiB granularity, leaving room for physical memory.
		dmSteps := int64((8 << 40) / DirectMapAlign)
		l.PageOffsetBase = DirectMapStart + Addr(rng.Int63n(dmSteps))*DirectMapAlign
		// Vmemmap: randomize within the 1 TiB region at 1 GiB granularity.
		vmSteps := int64((1<<40)/DirectMapAlign) - 8
		l.VmemmapBase = VmemmapStart + Addr(rng.Int63n(vmSteps))*DirectMapAlign
		// Vmalloc: same 1 GiB granularity inside its region.
		vaSteps := int64((4 << 40) / DirectMapAlign)
		l.VmallocBase = VmallocStart + Addr(rng.Int63n(vaSteps))*DirectMapAlign
	}
	l.symbols = defaultSymbols()
	return l
}

// MaxPFN returns one past the largest backed page frame number.
func (l *Layout) MaxPFN() PFN { return PFN(l.PhysBytes / PageSize) }

// PhysToKVA translates a physical address to its direct-map kernel virtual
// address.
func (l *Layout) PhysToKVA(pa uint64) Addr { return l.PageOffsetBase + Addr(pa) }

// KVAToPhys translates a direct-map KVA back to a physical address. It
// returns an error for addresses outside the backed direct map.
func (l *Layout) KVAToPhys(a Addr) (uint64, error) {
	if a < l.PageOffsetBase || uint64(a-l.PageOffsetBase) >= l.PhysBytes {
		return 0, fmt.Errorf("layout: KVA %#x outside backed direct map [%#x, %#x)", uint64(a), uint64(l.PageOffsetBase), uint64(l.PageOffsetBase)+l.PhysBytes)
	}
	return uint64(a - l.PageOffsetBase), nil
}

// InDirectMap reports whether the address falls inside the backed portion of
// this boot's direct map.
func (l *Layout) InDirectMap(a Addr) bool {
	_, err := l.KVAToPhys(a)
	return err == nil
}

// PFNToKVA returns the direct-map address of the page frame.
func (l *Layout) PFNToKVA(p PFN) Addr { return l.PhysToKVA(uint64(p) * PageSize) }

// KVAToPFN returns the page frame number backing a direct-map KVA.
func (l *Layout) KVAToPFN(a Addr) (PFN, error) {
	pa, err := l.KVAToPhys(a)
	if err != nil {
		return 0, err
	}
	return PFN(pa / PageSize), nil
}

// PFNToStructPage returns the vmemmap address of the struct page describing
// the frame: vmemmap_base + pfn * sizeof(struct page).
func (l *Layout) PFNToStructPage(p PFN) Addr {
	return l.VmemmapBase + Addr(uint64(p)*StructPageSize)
}

// StructPageToPFN inverts PFNToStructPage. It returns an error for addresses
// that are not struct page addresses of backed frames.
func (l *Layout) StructPageToPFN(a Addr) (PFN, error) {
	if a < l.VmemmapBase {
		return 0, fmt.Errorf("layout: %#x below vmemmap base", uint64(a))
	}
	off := uint64(a - l.VmemmapBase)
	if off%StructPageSize != 0 {
		return 0, fmt.Errorf("layout: %#x not struct-page aligned", uint64(a))
	}
	p := PFN(off / StructPageSize)
	if p >= l.MaxPFN() {
		return 0, fmt.Errorf("layout: struct page %#x beyond backed memory", uint64(a))
	}
	return p, nil
}

// StructPageToKVA translates a struct page address to the direct-map address
// of the page it describes, the translation a malicious NIC performs in step
// 3 of the Poisoned TX attack (§5.4).
func (l *Layout) StructPageToKVA(a Addr) (Addr, error) {
	p, err := l.StructPageToPFN(a)
	if err != nil {
		return 0, err
	}
	return l.PFNToKVA(p), nil
}

// Symbols returns the kernel symbol table of this boot.
func (l *Layout) Symbols() *SymbolTable { return l.symbols }

// SymbolKVA returns the runtime virtual address of a kernel symbol under this
// boot's text base.
func (l *Layout) SymbolKVA(name string) (Addr, error) {
	off, err := l.symbols.Offset(name)
	if err != nil {
		return 0, err
	}
	return l.TextBase + Addr(off), nil
}

// PageOffsetOf returns the sub-page offset of an address. The low 12 bits of
// an IOVA and of the KVA it maps are identical (§5.2.2 footnote), so devices
// learn them for free.
func PageOffsetOf(a Addr) uint64 { return uint64(a) & PageMask }

// PageAlignDown rounds an address down to its page base.
func PageAlignDown(a Addr) Addr { return a &^ Addr(PageMask) }

// PageAlignUp rounds a length up to whole pages.
func PageAlignUp(n uint64) uint64 { return (n + PageMask) &^ uint64(PageMask) }
