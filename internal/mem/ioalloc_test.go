package mem

import (
	"testing"

	"dmafault/internal/layout"
)

func TestIOAllocatorSegregation(t *testing.T) {
	// The [49] property: I/O buffers never share a frame with kmalloc
	// objects, killing type (d) by construction.
	m := newTestMemory(t, 32<<20, 1)
	io := NewIOAllocator(m)
	var ioBufs []layout.Addr
	for i := 0; i < 20; i++ {
		a, err := io.Alloc(0, 512)
		if err != nil {
			t.Fatal(err)
		}
		ioBufs = append(ioBufs, a)
	}
	var kmObjs []layout.Addr
	for i := 0; i < 20; i++ {
		a, err := m.Slab.Kmalloc(0, 512, "kernel_obj")
		if err != nil {
			t.Fatal(err)
		}
		kmObjs = append(kmObjs, a)
	}
	ioPages := map[layout.PFN]bool{}
	for _, a := range ioBufs {
		p, _ := m.Layout().KVAToPFN(a)
		ioPages[p] = true
		if !io.Owns(p) {
			t.Errorf("io page %d not owned", p)
		}
	}
	for _, a := range kmObjs {
		p, _ := m.Layout().KVAToPFN(a)
		if ioPages[p] {
			t.Fatalf("kernel object at %#x shares frame %d with I/O buffers", uint64(a), p)
		}
	}
}

func TestIOAllocatorPagesNeverRecycledToKernel(t *testing.T) {
	// DAMN keeps its pages: even after every I/O buffer is freed, the
	// frames stay out of the general pool, so later kernel allocations
	// cannot land on once-DMA-visible pages.
	m := newTestMemory(t, 16<<20, 1)
	io := NewIOAllocator(m)
	var pages []layout.PFN
	for i := 0; i < 8; i++ {
		a, err := io.Alloc(0, 4096)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := m.Layout().KVAToPFN(a)
		pages = append(pages, p)
		if err := io.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if io.Live() != 0 {
		t.Fatal("live count wrong")
	}
	for i := 0; i < 64; i++ {
		a, err := m.Slab.Kmalloc(0, 4096, "k")
		if err != nil {
			t.Fatal(err)
		}
		p, _ := m.Layout().KVAToPFN(a)
		for _, iop := range pages {
			if p == iop {
				t.Fatalf("kernel allocation landed on retained I/O page %d", p)
			}
		}
	}
}

func TestIOAllocatorErrors(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	io := NewIOAllocator(m)
	if _, err := io.Alloc(0, 0); err == nil {
		t.Error("zero alloc accepted")
	}
	if _, err := io.Alloc(0, layout.PageSize+1); err == nil {
		t.Error("oversize alloc accepted")
	}
	if err := io.Free(layout.Addr(0x1234)); err == nil {
		t.Error("bogus free accepted")
	}
	a, _ := io.Alloc(0, 64)
	if err := io.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := io.Free(a); err == nil {
		t.Error("double free accepted")
	}
	st := io.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.PagesOwned == 0 {
		t.Errorf("stats = %+v", st)
	}
}
