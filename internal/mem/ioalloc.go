package mem

import (
	"fmt"

	"dmafault/internal/layout"
)

// IOAllocator is the DAMN-style defense of Markuze et al. [49], discussed in
// §8/§9.2 of the paper: a DMA-aware allocator that serves I/O buffers from
// pages dedicated to I/O, so they never share frames with ordinary kernel
// objects — eliminating type (d) random co-location and the kmalloc half of
// type (b) by construction.
//
// The paper's §9.2 point stands regardless: "this API can be easily thwarted
// by device drivers via functions, such as build_skb, that add a vulnerable
// skb_shared_info into an I/O region" — segregation keeps *foreign* data off
// I/O pages but cannot keep the stack from placing its own metadata inside
// the I/O buffer. TestIOAllocator in ioalloc_test.go demonstrates both
// halves.
type IOAllocator struct {
	m *Memory
	// regions tracks pages owned by this allocator.
	owned map[layout.PFN]bool
	// free ranges within owned pages, bump-carved per page like DAMN's
	// magazines (one page never serves two live buffers unless both are
	// I/O buffers — co-location among I/O buffers is the type (c) story,
	// which DAMN addresses with static mappings, modeled elsewhere).
	current   layout.PFN
	offset    uint64
	live      map[layout.Addr]uint64
	stats     IOAllocStats
	hasRegion bool
}

// IOAllocStats counts allocator activity.
type IOAllocStats struct {
	Allocs, Frees, PagesOwned uint64
}

// NewIOAllocator builds a dedicated I/O allocator over the machine memory.
func NewIOAllocator(m *Memory) *IOAllocator {
	return &IOAllocator{m: m, owned: make(map[layout.PFN]bool), live: make(map[layout.Addr]uint64)}
}

// Stats returns a copy of the counters.
func (a *IOAllocator) Stats() IOAllocStats { return a.stats }

// Alloc carves an I/O buffer from dedicated pages (64-byte aligned).
func (a *IOAllocator) Alloc(cpu int, n uint64) (layout.Addr, error) {
	if n == 0 || n > layout.PageSize {
		return 0, fmt.Errorf("mem: io alloc of %d bytes (max one page)", n)
	}
	need := (n + 63) &^ 63
	if !a.hasRegion || a.offset+need > layout.PageSize {
		pfn, err := a.m.Pages.AllocPages(cpu, 0)
		if err != nil {
			return 0, err
		}
		a.owned[pfn] = true
		a.current = pfn
		a.offset = 0
		a.hasRegion = true
		a.stats.PagesOwned++
	}
	addr := a.m.layout.PFNToKVA(a.current) + layout.Addr(a.offset)
	a.offset += need
	a.live[addr] = need
	a.stats.Allocs++
	return addr, nil
}

// Free releases an I/O buffer. Pages are retained by the allocator (DAMN
// keeps its magazines mapped and reuses them), so freed I/O pages never
// return to the general pool where kernel objects could land on them.
func (a *IOAllocator) Free(addr layout.Addr) error {
	if _, ok := a.live[addr]; !ok {
		return fmt.Errorf("mem: io free of unknown buffer %#x", uint64(addr))
	}
	delete(a.live, addr)
	a.stats.Frees++
	return nil
}

// Owns reports whether the frame belongs to the I/O allocator.
func (a *IOAllocator) Owns(p layout.PFN) bool { return a.owned[p] }

// Live returns the number of outstanding buffers.
func (a *IOAllocator) Live() int { return len(a.live) }
