package mem

import (
	"testing"

	"dmafault/internal/layout"
)

func newTestMemory(t *testing.T, bytes uint64, cpus int) *Memory {
	t.Helper()
	l := layout.New(layout.Config{KASLR: true, Seed: 11, PhysBytes: bytes})
	m, err := New(Config{Layout: l, CPUs: cpus})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil layout accepted")
	}
	l := layout.New(layout.Config{PhysBytes: 16 << 20})
	l.PhysBytes = 12345 // not page aligned
	if _, err := New(Config{Layout: l}); err == nil {
		t.Error("unaligned PhysBytes accepted")
	}
}

func TestPhysReadWrite(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	want := []byte{1, 2, 3, 4}
	if err := m.WritePhys(0x5000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := m.ReadPhys(0x5000, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReadPhys = %v, want %v", got, want)
		}
	}
	if err := m.ReadPhys(16<<20, got); err == nil {
		t.Error("out-of-range phys read accepted")
	}
	if err := m.WritePhys((16<<20)-2, want); err == nil {
		t.Error("straddling phys write accepted")
	}
}

func TestKVAReadWriteAndWordHelpers(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	a := m.Layout().PFNToKVA(1200) + 16
	if err := m.WriteU64(a, 0xdeadbeefcafef00d); err != nil {
		t.Fatal(err)
	}
	v, err := m.ReadU64(a)
	if err != nil || v != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x, %v", v, err)
	}
	if err := m.WriteU32(a+8, 0x11223344); err != nil {
		t.Fatal(err)
	}
	v32, err := m.ReadU32(a + 8)
	if err != nil || v32 != 0x11223344 {
		t.Fatalf("ReadU32 = %#x, %v", v32, err)
	}
	if err := m.WriteU16(a+12, 0xaabb); err != nil {
		t.Fatal(err)
	}
	v16, err := m.ReadU16(a + 12)
	if err != nil || v16 != 0xaabb {
		t.Fatalf("ReadU16 = %#x, %v", v16, err)
	}
	// Physical and virtual views agree (little endian).
	pa, _ := m.Layout().KVAToPhys(a)
	b := make([]byte, 1)
	if err := m.ReadPhys(pa, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x0d {
		t.Errorf("phys view = %#x, want 0x0d", b[0])
	}
	if err := m.Memset(a, 0xee, 8); err != nil {
		t.Fatal(err)
	}
	v, _ = m.ReadU64(a)
	if v != 0xeeeeeeeeeeeeeeee {
		t.Errorf("after memset: %#x", v)
	}
}

func TestKVAAccessRejectsNonDirectMap(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	if _, err := m.ReadU64(layout.VmallocStart); err == nil {
		t.Error("vmalloc read accepted")
	}
	if err := m.WriteU64(m.Layout().PageOffsetBase-8, 1); err == nil {
		t.Error("below direct map write accepted")
	}
}

type recordingTracer struct {
	kmallocs, kfrees, pageAllocs, pageFrees int
	cpuReads, cpuWrites                     int
	lastSite                                string
}

func (r *recordingTracer) OnKmalloc(a layout.Addr, size uint64, site string) {
	r.kmallocs++
	r.lastSite = site
}
func (r *recordingTracer) OnKfree(a layout.Addr, size uint64) { r.kfrees++ }
func (r *recordingTracer) OnPageAlloc(p layout.PFN, o uint)   { r.pageAllocs++ }
func (r *recordingTracer) OnPageFree(p layout.PFN, o uint)    { r.pageFrees++ }
func (r *recordingTracer) OnCPUAccess(a layout.Addr, n uint64, w bool) {
	if w {
		r.cpuWrites++
	} else {
		r.cpuReads++
	}
}

func TestTracerEvents(t *testing.T) {
	l := layout.New(layout.Config{PhysBytes: 16 << 20})
	tr := &recordingTracer{}
	m, err := New(Config{Layout: l, CPUs: 1, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Slab.Kmalloc(0, 100, "test_site+0x10")
	if err != nil {
		t.Fatal(err)
	}
	if tr.kmallocs != 1 || tr.lastSite != "test_site+0x10" {
		t.Errorf("kmalloc trace: %d, site %q", tr.kmallocs, tr.lastSite)
	}
	if tr.pageAllocs == 0 {
		t.Error("slab creation did not trace a page alloc")
	}
	if err := m.WriteU64(a, 7); err != nil {
		t.Fatal(err)
	}
	if tr.cpuWrites == 0 {
		t.Error("CPU write not traced")
	}
	if _, err := m.ReadU64(a); err != nil {
		t.Fatal(err)
	}
	if tr.cpuReads == 0 {
		t.Error("CPU read not traced")
	}
	if err := m.Slab.Kfree(a); err != nil {
		t.Fatal(err)
	}
	if tr.kfrees != 1 {
		t.Errorf("kfree trace: %d", tr.kfrees)
	}
}

func TestPageAccessors(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	if _, err := m.Page(layout.PFN(m.NumPages())); err == nil {
		t.Error("out-of-range Page accepted")
	}
	pi, err := m.Page(0)
	if err != nil {
		t.Fatal(err)
	}
	if !pi.Has(FlagReserved) {
		t.Error("PFN 0 should be boot-reserved")
	}
}

func TestPageInfoDMAMarkers(t *testing.T) {
	var pi PageInfo
	if pi.DMAMapped() {
		t.Error("fresh page reports mapped")
	}
	pi.MarkDMAMapped(false)
	pi.MarkDMAMapped(true)
	if !pi.DMAMapped() || !pi.DMAWritable {
		t.Error("mark did not take")
	}
	pi.ClearDMAMapped()
	if !pi.DMAWritable {
		t.Error("writable cleared while a mapping remains")
	}
	pi.ClearDMAMapped()
	if pi.DMAMapped() || pi.DMAWritable {
		t.Error("clear did not fully release")
	}
	pi.ClearDMAMapped() // must not underflow
	if pi.DMAMapCount != 0 {
		t.Error("map count underflowed")
	}
}
