package mem

import "dmafault/internal/metrics"

// Memory implements metrics.Source for the three kernel allocators whose
// placement policies the paper studies (buddy pages, SLUB, page_frag), plus
// the free-frame gauge. The DAMN-style IOAllocator is a separate Source
// (it is constructed on demand, not per boot).
//
// Collection reads plain counters; gather only while the machine is
// quiescent (see the metrics package comment).

// Describe implements metrics.Source.
func (m *Memory) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "mem_pages_free", Help: "Free physical frames (buddy lists plus hot caches).", Kind: metrics.KindGauge},
		{Name: "mem_page_allocs_total", Help: "Buddy page-block allocations.", Kind: metrics.KindCounter},
		{Name: "mem_page_frees_total", Help: "Buddy page-block frees.", Kind: metrics.KindCounter},
		{Name: "mem_page_hot_hits_total", Help: "Order-0 allocations served from a per-CPU hot cache (fast reuse, §5.2.1).", Kind: metrics.KindCounter},
		{Name: "mem_slab_allocs_total", Help: "kmalloc objects handed out.", Kind: metrics.KindCounter},
		{Name: "mem_slab_frees_total", Help: "kmalloc objects returned.", Kind: metrics.KindCounter},
		{Name: "mem_slabs_created_total", Help: "Slab pages created.", Kind: metrics.KindCounter},
		{Name: "mem_slabs_destroyed_total", Help: "Slab pages destroyed.", Kind: metrics.KindCounter},
		{Name: "mem_frag_allocs_total", Help: "page_frag buffers carved.", Kind: metrics.KindCounter},
		{Name: "mem_frag_regions_total", Help: "page_frag 32 KiB compound regions opened.", Kind: metrics.KindCounter},
	}
}

// Collect implements metrics.Source.
func (m *Memory) Collect(emit func(name string, s metrics.Sample)) {
	ps := m.Pages.Stats()
	ss := m.Slab.Stats()
	fs := m.Frag.Stats()
	emit("mem_pages_free", metrics.Sample{Value: float64(m.Pages.FreePages())})
	emit("mem_page_allocs_total", metrics.Sample{Value: float64(ps.Allocs)})
	emit("mem_page_frees_total", metrics.Sample{Value: float64(ps.Frees)})
	emit("mem_page_hot_hits_total", metrics.Sample{Value: float64(ps.HotHits)})
	emit("mem_slab_allocs_total", metrics.Sample{Value: float64(ss.Allocs)})
	emit("mem_slab_frees_total", metrics.Sample{Value: float64(ss.Frees)})
	emit("mem_slabs_created_total", metrics.Sample{Value: float64(ss.SlabsCreated)})
	emit("mem_slabs_destroyed_total", metrics.Sample{Value: float64(ss.SlabsDestroyed)})
	emit("mem_frag_allocs_total", metrics.Sample{Value: float64(fs.Allocs)})
	emit("mem_frag_regions_total", metrics.Sample{Value: float64(fs.Regions)})
}

// Describe implements metrics.Source for the DAMN-style I/O allocator.
func (a *IOAllocator) Describe() []metrics.Desc {
	return []metrics.Desc{
		{Name: "mem_io_allocs_total", Help: "I/O buffers carved from dedicated pages.", Kind: metrics.KindCounter},
		{Name: "mem_io_frees_total", Help: "I/O buffers released.", Kind: metrics.KindCounter},
		{Name: "mem_io_pages_owned", Help: "Pages dedicated to I/O buffers.", Kind: metrics.KindGauge},
		{Name: "mem_io_live_buffers", Help: "Outstanding I/O buffers.", Kind: metrics.KindGauge},
	}
}

// Collect implements metrics.Source.
func (a *IOAllocator) Collect(emit func(name string, s metrics.Sample)) {
	emit("mem_io_allocs_total", metrics.Sample{Value: float64(a.stats.Allocs)})
	emit("mem_io_frees_total", metrics.Sample{Value: float64(a.stats.Frees)})
	emit("mem_io_pages_owned", metrics.Sample{Value: float64(a.stats.PagesOwned)})
	emit("mem_io_live_buffers", metrics.Sample{Value: float64(len(a.live))})
}
