package mem

import (
	"testing"
	"testing/quick"

	"dmafault/internal/layout"
)

func TestAllocFreeRoundTrip(t *testing.T) {
	m := newTestMemory(t, 16<<20, 2)
	before := m.Pages.FreePages()
	p, err := m.Pages.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi := m.mustPage(p)
	if pi.Has(FlagFree) || pi.RefCount != 1 {
		t.Errorf("allocated page state: flags %v refcount %d", pi.Flags, pi.RefCount)
	}
	if err := m.Pages.Free(0, p, 0); err != nil {
		t.Fatal(err)
	}
	if m.Pages.FreePages() != before {
		t.Errorf("free pages %d, want %d", m.Pages.FreePages(), before)
	}
}

func TestHotPageReuse(t *testing.T) {
	// §5.2.1: freed pages are reused immediately on the same CPU, LIFO.
	m := newTestMemory(t, 16<<20, 2)
	p, err := m.Pages.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pages.Free(0, p, 0); err != nil {
		t.Fatal(err)
	}
	q, err := m.Pages.AllocPages(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Errorf("hot page not reused: freed %d, got %d", p, q)
	}
	// A different CPU does not see this hot page first.
	if err := m.Pages.Free(0, q, 0); err != nil {
		t.Fatal(err)
	}
	r, err := m.Pages.AllocPages(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r == p {
		t.Errorf("cpu 1 allocation got cpu 0's hot page")
	}
}

func TestCompoundAllocation(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, err := m.Pages.AllocPages(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p&(1<<3-1) != 0 {
		t.Errorf("order-3 block at PFN %d not naturally aligned", p)
	}
	if !m.mustPage(p).Has(FlagCompoundHead) {
		t.Error("head not marked compound head")
	}
	for i := layout.PFN(1); i < 8; i++ {
		ti := m.mustPage(p + i)
		if !ti.Has(FlagCompoundTail) || ti.CompoundHead != p {
			t.Errorf("tail %d not marked (flags %v head %d)", i, ti.Flags, ti.CompoundHead)
		}
	}
	if err := m.Pages.Free(0, p, 3); err != nil {
		t.Fatal(err)
	}
	if m.mustPage(p + 1).Has(FlagCompoundTail) {
		t.Error("tail flag survived free")
	}
}

func TestFreeErrors(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, _ := m.Pages.AllocPages(0, 1)
	if err := m.Pages.Free(0, p+1, 0); err == nil {
		t.Error("freeing compound tail accepted")
	}
	if err := m.Pages.Free(0, p, 1); err != nil {
		t.Fatal(err)
	}
	// Double free: page is now in buddy lists (order 1 skips the hot cache).
	if err := m.Pages.Free(0, p, 1); err == nil {
		t.Error("double free accepted")
	}
	if err := m.Pages.Free(0, 0, 0); err == nil {
		t.Error("freeing boot-reserved page accepted")
	}
	if err := m.Pages.Free(0, layout.PFN(m.NumPages()), 0); err == nil {
		t.Error("freeing out-of-range PFN accepted")
	}
	if _, err := m.Pages.AllocPages(0, MaxOrder+1); err == nil {
		t.Error("order above MaxOrder accepted")
	}
}

func TestGetPutPage(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, _ := m.Pages.AllocPages(0, 0)
	if err := m.Pages.GetPage(p); err != nil {
		t.Fatal(err)
	}
	if m.mustPage(p).RefCount != 2 {
		t.Errorf("refcount %d after get_page", m.mustPage(p).RefCount)
	}
	if err := m.Pages.PutPage(0, p); err != nil {
		t.Fatal(err)
	}
	if m.mustPage(p).RefCount != 1 {
		t.Errorf("refcount %d after put_page", m.mustPage(p).RefCount)
	}
	if err := m.Pages.PutPage(0, p); err != nil {
		t.Fatal(err)
	}
	if !m.mustPage(p).Has(FlagFree) {
		t.Error("page not freed when refcount dropped to zero")
	}
	if err := m.Pages.PutPage(0, p); err == nil {
		t.Error("put_page on free page accepted")
	}
	if err := m.Pages.GetPage(p); err == nil {
		t.Error("get_page on free page accepted")
	}
	// Tail redirection.
	c, _ := m.Pages.AllocPages(0, 2)
	if err := m.Pages.GetPage(c + 3); err != nil {
		t.Fatal(err)
	}
	if m.mustPage(c).RefCount != 2 {
		t.Error("get_page on tail did not redirect to head")
	}
	if err := m.Pages.PutPage(0, c+2); err != nil {
		t.Fatal(err)
	}
	if m.mustPage(c).RefCount != 1 {
		t.Error("put_page on tail did not redirect to head")
	}
}

func TestBuddyMerging(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	// Exhaust the hot path by allocating order-1 blocks.
	a, err := m.Pages.AllocPages(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Pages.FreePages()
	if err := m.Pages.Free(0, a, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Pages.FreePages(); got != before+2 {
		t.Errorf("free pages %d, want %d", got, before+2)
	}
	// After freeing, a MaxOrder allocation must still be possible (merge
	// happened or other blocks exist); allocate every MaxOrder block and
	// confirm accounting stays consistent.
	var blocks []layout.PFN
	for {
		p, err := m.Pages.AllocPages(0, MaxOrder)
		if err != nil {
			break
		}
		blocks = append(blocks, p)
	}
	if len(blocks) == 0 {
		t.Fatal("no MaxOrder blocks available")
	}
	for _, p := range blocks {
		if err := m.Pages.Free(0, p, MaxOrder); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDrainHotCaches(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	p, _ := m.Pages.AllocPages(0, 0)
	if err := m.Pages.Free(0, p, 0); err != nil {
		t.Fatal(err)
	}
	m.Pages.DrainHotCaches()
	q, err := m.Pages.AllocPages(1, 0) // other CPU can now get it via buddy
	if err != nil {
		t.Fatal(err)
	}
	_ = q
}

func TestOutOfMemory(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1)
	n := 0
	for {
		if _, err := m.Pages.AllocPages(0, 0); err != nil {
			break
		}
		n++
	}
	if n == 0 {
		t.Fatal("no pages allocated before OOM")
	}
	if _, err := m.Pages.AllocPages(0, 0); err == nil {
		t.Error("allocation succeeded after OOM")
	}
}

// Property: alloc/free sequences never hand out the same frame twice while
// live, and never lose frames.
func TestPropertyAllocatorConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		m := newTestMemory(t, 8<<20, 2)
		start := m.Pages.FreePages()
		live := make(map[layout.PFN]uint)
		for _, op := range ops {
			order := uint(op % 3)
			cpu := int(op>>2) % 2
			if op%2 == 0 {
				p, err := m.Pages.AllocPages(cpu, order)
				if err != nil {
					continue
				}
				for q := range live {
					qo := live[q]
					// Overlap check: [p, p+2^order) vs [q, q+2^qo)
					if p < q+(1<<qo) && q < p+(1<<order) {
						return false
					}
				}
				live[p] = order
			} else {
				for q, qo := range live {
					if qo == order {
						if err := m.Pages.Free(cpu, q, qo); err != nil {
							return false
						}
						delete(live, q)
						break
					}
				}
			}
		}
		for q, qo := range live {
			if err := m.Pages.Free(0, q, qo); err != nil {
				return false
			}
		}
		return m.Pages.FreePages() == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
