package mem

import (
	"testing"

	"dmafault/internal/layout"
)

// LIFO buddy freelists make a spray land on the block freed just before it:
// the first sprayed block of the same order is exactly the freed block.
func TestSprayReclaimsFreedBlock(t *testing.T) {
	m := newTestMemory(t, 16<<20, 2)
	p, err := m.Pages.AllocPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pages.Free(0, p, 2); err != nil {
		t.Fatal(err)
	}
	set, err := m.Pages.Spray(0, SprayPattern{Blocks: 4, Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Pages.ReleaseSpray(0, set)
	idx, ok := set.Contains(p)
	if !ok {
		t.Fatalf("spray missed freed block %d: %v", p, set.PFNs)
	}
	if idx != 0 || set.PFNs[0] != p {
		t.Errorf("LIFO reuse should land on the first sprayed block: hit index %d, heads %v", idx, set.PFNs)
	}
}

// A smaller-order spray still hits the freed block's head page: splitting a
// buddy block keeps the low half, so the first order-2 allocation carved out
// of a freed order-4 block starts at the block's first frame.
func TestSprayLowerOrderHitsBlockHead(t *testing.T) {
	m := newTestMemory(t, 16<<20, 2)
	p, err := m.Pages.AllocPages(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Pages.Free(0, p, 4); err != nil {
		t.Fatal(err)
	}
	set, err := m.Pages.Spray(0, SprayPattern{Blocks: 2, Order: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Pages.ReleaseSpray(0, set)
	if _, ok := set.Contains(p); !ok {
		t.Fatalf("order-2 spray missed head of freed order-4 block %d: %v", p, set.PFNs)
	}
	if set.PFNs[0] != p {
		t.Errorf("first sprayed block should be the freed block's low half: got %d, want %d", set.PFNs[0], p)
	}
}

func TestSprayReleaseRestoresFreePages(t *testing.T) {
	m := newTestMemory(t, 16<<20, 2)
	before := m.Pages.FreePages()
	set, err := m.Pages.Spray(0, SprayPattern{Blocks: 8, Order: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := before - m.Pages.FreePages(); got != 8*2 {
		t.Errorf("spray consumed %d pages, want 16", got)
	}
	if err := m.Pages.ReleaseSpray(0, set); err != nil {
		t.Fatal(err)
	}
	if m.Pages.FreePages() != before {
		t.Errorf("release left %d free pages, want %d", m.Pages.FreePages(), before)
	}
	if len(set.PFNs) != 0 {
		t.Error("release must clear the set")
	}
}

// Exhaustion mid-burst returns the partial set with the error, and the
// partial set is releasable.
func TestSprayPartialOnExhaustion(t *testing.T) {
	m := newTestMemory(t, 8<<20, 1) // ~1024 usable frames after the 4 MiB boot reserve
	set, err := m.Pages.Spray(0, SprayPattern{Blocks: 1 << 10, Order: 4})
	if err == nil {
		t.Fatal("spray of more memory than exists should fail")
	}
	if set == nil || len(set.PFNs) == 0 {
		t.Fatal("partial set should carry the blocks obtained before exhaustion")
	}
	if err := m.Pages.ReleaseSpray(0, set); err != nil {
		t.Fatal(err)
	}
}

func TestSprayRejectsOverMaxOrder(t *testing.T) {
	m := newTestMemory(t, 16<<20, 1)
	if _, err := m.Pages.Spray(0, SprayPattern{Blocks: 1, Order: MaxOrder + 1}); err == nil {
		t.Fatal("order above MaxOrder must be rejected")
	}
}

func TestSpraySetContainsSpan(t *testing.T) {
	set := &SpraySet{Order: 2, PFNs: []layout.PFN{100, 200}}
	for _, p := range []layout.PFN{100, 103, 200, 203} {
		if _, ok := set.Contains(p); !ok {
			t.Errorf("PFN %d should be inside a sprayed block", p)
		}
	}
	for _, p := range []layout.PFN{99, 104, 199, 204} {
		if _, ok := set.Contains(p); ok {
			t.Errorf("PFN %d should be outside every sprayed block", p)
		}
	}
	var nilSet *SpraySet
	if _, ok := nilSet.Contains(100); ok {
		t.Error("nil set contains nothing")
	}
}
