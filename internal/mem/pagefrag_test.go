package mem

import (
	"testing"
	"testing/quick"

	"dmafault/internal/layout"
)

func TestFragConsecutiveBuffersShareRegion(t *testing.T) {
	// Fig. 5 / §5.2.2: consecutive RX data buffers come from one region,
	// carved back to front, and routinely share physical pages.
	m := newTestMemory(t, 32<<20, 2)
	a, err := m.Frag.Alloc(0, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Frag.Alloc(0, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("page_frag must carve downward: first %#x, second %#x", uint64(a), uint64(b))
	}
	ra, err := m.Frag.RegionOf(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := m.Frag.RegionOf(b)
	if err != nil {
		t.Fatal(err)
	}
	if ra != rb {
		t.Errorf("consecutive buffers in different regions: %d vs %d", ra, rb)
	}
	// With 2 KiB buffers, two consecutive allocations share a page with
	// probability 1/2; allocate a run and require at least one shared pair
	// (type (c) co-location).
	addrs := []layout.Addr{a, b}
	for i := 0; i < 14; i++ {
		x, err := m.Frag.Alloc(0, 2048, 0)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, x)
	}
	shared := 0
	for i := 1; i < len(addrs); i++ {
		p1, _ := m.Layout().KVAToPFN(addrs[i-1])
		p2, _ := m.Layout().KVAToPFN(addrs[i] + 2047)
		if p1 == p2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no consecutive 2 KiB buffers share a page; type (c) co-location lost")
	}
	for _, x := range addrs {
		if err := m.Frag.Free(0, x); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFragPerCPURegions(t *testing.T) {
	m := newTestMemory(t, 32<<20, 2)
	a, _ := m.Frag.Alloc(0, 1024, 0)
	b, _ := m.Frag.Alloc(1, 1024, 0)
	ra, _ := m.Frag.RegionOf(a)
	rb, _ := m.Frag.RegionOf(b)
	if ra == rb {
		t.Error("different CPUs share a page_frag region")
	}
}

func TestFragRefill(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	first, err := m.Frag.Alloc(0, 16384, 0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Frag.Alloc(0, 16384, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Third 16 KiB request cannot fit the remaining 0 bytes: new region.
	third, err := m.Frag.Alloc(0, 16384, 0)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := m.Frag.RegionOf(first)
	r2, _ := m.Frag.RegionOf(second)
	r3, _ := m.Frag.RegionOf(third)
	if r1 != r2 {
		t.Error("two 16 KiB fragments should share the 32 KiB region")
	}
	if r3 == r1 {
		t.Error("exhausted region was not replaced")
	}
	if got := m.Frag.Stats().Regions; got != 2 {
		t.Errorf("Regions = %d, want 2", got)
	}
	// Old region stays alive until its fragments are freed.
	if m.mustPage(r1).Has(FlagFree) {
		t.Error("old region freed while fragments live")
	}
	if err := m.Frag.Free(0, first); err != nil {
		t.Fatal(err)
	}
	if err := m.Frag.Free(0, second); err != nil {
		t.Fatal(err)
	}
	if !m.mustPage(r1).Has(FlagFree) {
		t.Error("old region not freed after last fragment")
	}
	if err := m.Frag.Free(0, third); err != nil {
		t.Fatal(err)
	}
}

func TestFragAlignment(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	a, err := m.Frag.Alloc(0, 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)&255 != 0 {
		t.Errorf("alloc not 256-aligned: %#x", uint64(a))
	}
	b, err := m.Frag.Alloc(0, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(b)&63 != 0 {
		t.Errorf("default alignment not cache-line: %#x", uint64(b))
	}
}

func TestFragErrors(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	if _, err := m.Frag.Alloc(5, 100, 0); err == nil {
		t.Error("invalid cpu accepted")
	}
	if _, err := m.Frag.Alloc(0, 0, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := m.Frag.Alloc(0, FragRegionBytes+1, 0); err == nil {
		t.Error("oversize accepted")
	}
	if _, err := m.Frag.Alloc(0, 100, 3); err == nil {
		t.Error("non-power-of-two align accepted")
	}
	a, _ := m.Slab.Kmalloc(0, 64, "t")
	if err := m.Frag.Free(0, a); err == nil {
		t.Error("page_frag free of slab address accepted")
	}
}

// Property: page_frag never hands out overlapping live ranges, and freeing
// everything returns all frames.
func TestPropertyFragNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := newTestMemory(t, 32<<20, 1)
		start := m.Pages.FreePages()
		type rng struct {
			a layout.Addr
			n uint64
		}
		var live []rng
		for _, s := range sizes {
			n := uint64(s)%4096 + 1
			a, err := m.Frag.Alloc(0, n, 0)
			if err != nil {
				return true // OOM acceptable mid-run
			}
			for _, o := range live {
				if a < o.a+layout.Addr(o.n) && o.a < a+layout.Addr(n) {
					return false
				}
			}
			live = append(live, rng{a, n})
		}
		for _, o := range live {
			if err := m.Frag.Free(0, o.a); err != nil {
				return false
			}
		}
		m.Frag.DropCaches(0)
		m.Pages.DrainHotCaches()
		return m.Pages.FreePages() == start
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
