package mem

import (
	"fmt"
	"sort"

	"dmafault/internal/layout"
)

// SizeClasses are the kmalloc size classes, mirroring Linux's kmalloc-<n>
// caches. An allocation is served from the smallest class that fits, so
// objects of *similar* size share slab pages — the random co-location of
// vulnerability type (d): "objects allocated via the kmalloc API may share a
// page with objects of similar size" (§4.2).
var SizeClasses = []uint64{8, 16, 32, 64, 96, 128, 192, 256, 512, 1024, 2048, 4096, 8192}

// KmallocMax is the largest size served by the slab allocator.
const KmallocMax = 8192

// slabOrder returns the buddy order of slabs for a size class.
func slabOrder(class uint64) uint {
	switch {
	case class <= 256:
		return 0
	case class <= 1024:
		return 1
	case class <= 2048:
		return 2
	default:
		return 3
	}
}

// slab is one slab: a 2^order block of pages sliced into objects of one size
// class. The freelist is threaded through the *objects themselves* in
// simulated memory (first 8 bytes of each free object hold the KVA of the
// next free object), exactly like SLUB — this is kernel metadata that a
// device can read and corrupt whenever an object on the slab page is
// DMA-mapped (Fig. 1(b), [4]).
type slab struct {
	head     layout.PFN
	class    uint64
	order    uint
	objects  int
	inuse    int
	freeHead layout.Addr // 0 = empty freelist
	state    []byte      // per-object: 0 free, 1 allocated
	sites    []string    // per-object allocation site
}

// SlabAllocator implements kmalloc/kfree over the page allocator.
type SlabAllocator struct {
	m       *Memory
	partial map[uint64][]*slab   // class -> slabs with free objects
	byPage  map[layout.PFN]*slab // any frame of slab -> slab
	stats   SlabStats
}

// SlabStats counts allocator activity.
type SlabStats struct {
	Allocs, Frees, SlabsCreated, SlabsDestroyed uint64
}

func newSlabAllocator(m *Memory) *SlabAllocator {
	return &SlabAllocator{
		m:       m,
		partial: make(map[uint64][]*slab),
		byPage:  make(map[layout.PFN]*slab),
	}
}

// ClassFor returns the size class that serves a request of n bytes.
func ClassFor(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("mem: kmalloc of 0 bytes")
	}
	i := sort.Search(len(SizeClasses), func(i int) bool { return SizeClasses[i] >= n })
	if i == len(SizeClasses) {
		return 0, fmt.Errorf("mem: kmalloc of %d bytes exceeds KmallocMax %d", n, KmallocMax)
	}
	return SizeClasses[i], nil
}

// Stats returns a copy of the allocator statistics.
func (s *SlabAllocator) Stats() SlabStats { return s.stats }

// Kmalloc allocates n bytes and returns the object's KVA. site identifies
// the allocating code location (function+offset) for sanitizer reports.
// Like the kernel's kmalloc, the memory is NOT zeroed: stale contents leak.
func (s *SlabAllocator) Kmalloc(cpu int, n uint64, site string) (layout.Addr, error) {
	class, err := ClassFor(n)
	if err != nil {
		return 0, err
	}
	sl, err := s.partialSlab(cpu, class)
	if err != nil {
		return 0, err
	}
	addr := sl.freeHead
	if !s.validObjectAddr(sl, addr) {
		// The freelist pointer lives inside free objects in (device-
		// reachable) memory; a DMA write can corrupt it. Detecting the
		// corruption here models CONFIG_SLAB_FREELIST_HARDENED — the
		// un-hardened kernel would dereference wild memory and crash, the
		// denial-of-service outcome §3.1 mentions.
		return 0, fmt.Errorf("mem: corrupted slab freelist head %#x on slab %d (kernel would panic)", uint64(addr), sl.head)
	}
	next, err := s.m.ReadU64(addr) // freelist pointer lives inside the object
	if err != nil {
		return 0, fmt.Errorf("mem: corrupt freelist on slab %d: %w", sl.head, err)
	}
	if next != 0 && !s.validObjectAddr(sl, layout.Addr(next)) {
		return 0, fmt.Errorf("mem: corrupted slab freelist link %#x -> %#x (kernel would panic)", uint64(addr), next)
	}
	sl.freeHead = layout.Addr(next)
	idx := s.objIndex(sl, addr)
	sl.state[idx] = 1
	sl.sites[idx] = site
	sl.inuse++
	if sl.inuse == sl.objects {
		s.removePartial(sl)
	}
	s.stats.Allocs++
	s.m.tracerOnKmalloc(addr, class, site)
	return addr, nil
}

// Kzalloc is Kmalloc followed by zeroing.
func (s *SlabAllocator) Kzalloc(cpu int, n uint64, site string) (layout.Addr, error) {
	a, err := s.Kmalloc(cpu, n, site)
	if err != nil {
		return 0, err
	}
	class, _ := ClassFor(n)
	if err := s.m.Memset(a, 0, class); err != nil {
		return 0, err
	}
	return a, nil
}

// Kfree returns an object to its slab. The object's first 8 bytes are
// overwritten with the freelist pointer, in simulated memory.
func (s *SlabAllocator) Kfree(a layout.Addr) error {
	sl, idx, err := s.objectOf(a)
	if err != nil {
		return err
	}
	base := s.objAddr(sl, idx)
	if base != a {
		return fmt.Errorf("mem: kfree of interior pointer %#x (object starts at %#x)", uint64(a), uint64(base))
	}
	if sl.state[idx] == 0 {
		return fmt.Errorf("mem: double kfree of %#x", uint64(a))
	}
	s.m.tracerOnKfree(a, sl.class)
	sl.state[idx] = 0
	sl.sites[idx] = ""
	if err := s.m.WriteU64(a, uint64(sl.freeHead)); err != nil {
		return err
	}
	wasFull := sl.inuse == sl.objects
	sl.freeHead = a
	sl.inuse--
	if wasFull {
		s.partial[sl.class] = append(s.partial[sl.class], sl)
	}
	if sl.inuse == 0 {
		s.destroySlab(sl)
	}
	return nil
}

// SizeOf returns the size class of a live kmalloc object (ksize).
func (s *SlabAllocator) SizeOf(a layout.Addr) (uint64, error) {
	sl, idx, err := s.objectOf(a)
	if err != nil {
		return 0, err
	}
	if sl.state[idx] == 0 {
		return 0, fmt.Errorf("mem: ksize of free object %#x", uint64(a))
	}
	return sl.class, nil
}

// SiteOf returns the allocation site of a live object (for sanitizer reports).
func (s *SlabAllocator) SiteOf(a layout.Addr) (string, error) {
	sl, idx, err := s.objectOf(a)
	if err != nil {
		return "", err
	}
	if sl.state[idx] == 0 {
		return "", fmt.Errorf("mem: site of free object %#x", uint64(a))
	}
	return sl.sites[idx], nil
}

// ObjectsOnPage returns the (address, size, site, live) tuples of all objects
// whose storage intersects the given frame. D-KASAN uses this to report what
// a freshly DMA-mapped page exposes.
type SlabObject struct {
	Addr layout.Addr
	Size uint64
	Site string
	Live bool
}

// ObjectsOnPage lists slab objects overlapping the frame, or nil if the frame
// is not a slab page.
func (s *SlabAllocator) ObjectsOnPage(p layout.PFN) []SlabObject {
	sl, ok := s.byPage[p]
	if !ok {
		return nil
	}
	pageStart := s.m.layout.PFNToKVA(p)
	pageEnd := pageStart + layout.PageSize
	var out []SlabObject
	for i := 0; i < sl.objects; i++ {
		a := s.objAddr(sl, i)
		if a+layout.Addr(sl.class) > pageStart && a < pageEnd {
			out = append(out, SlabObject{Addr: a, Size: sl.class, Site: sl.sites[i], Live: sl.state[i] == 1})
		}
	}
	return out
}

// partialSlab finds (or creates) a slab of the class with a free object.
func (s *SlabAllocator) partialSlab(cpu int, class uint64) (*slab, error) {
	if list := s.partial[class]; len(list) > 0 {
		return list[len(list)-1], nil
	}
	order := slabOrder(class)
	head, err := s.m.Pages.AllocPages(cpu, order)
	if err != nil {
		return nil, err
	}
	bytes := uint64(layout.PageSize) << order
	sl := &slab{
		head:    head,
		class:   class,
		order:   order,
		objects: int(bytes / class),
	}
	sl.state = make([]byte, sl.objects)
	sl.sites = make([]string, sl.objects)
	// Thread the freelist through the objects, last to first, so that
	// allocation order is ascending addresses (like a fresh SLUB slab).
	var next layout.Addr
	for i := sl.objects - 1; i >= 0; i-- {
		a := s.objAddr(sl, i)
		if err := s.m.WriteU64(a, uint64(next)); err != nil {
			return nil, err
		}
		next = a
	}
	sl.freeHead = next
	for i := layout.PFN(0); i < layout.PFN(1)<<order; i++ {
		pi := s.m.mustPage(head + i)
		pi.Flags |= FlagSlab
		pi.SlabClass = class
		s.byPage[head+i] = sl
	}
	s.partial[class] = append(s.partial[class], sl)
	s.stats.SlabsCreated++
	return sl, nil
}

func (s *SlabAllocator) removePartial(sl *slab) {
	list := s.partial[sl.class]
	for i, x := range list {
		if x == sl {
			s.partial[sl.class] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

func (s *SlabAllocator) destroySlab(sl *slab) {
	s.removePartial(sl)
	for i := layout.PFN(0); i < layout.PFN(1)<<sl.order; i++ {
		pi := s.m.mustPage(sl.head + i)
		pi.Flags &^= FlagSlab
		pi.SlabClass = 0
		delete(s.byPage, sl.head+i)
	}
	s.stats.SlabsDestroyed++
	// Best effort: the page allocator cannot fail here for a valid slab.
	if err := s.m.Pages.Free(0, sl.head, sl.order); err != nil {
		panic(fmt.Sprintf("mem: freeing slab pages: %v", err))
	}
}

// validObjectAddr reports whether the address is an object boundary of the
// slab (the freelist-hardening sanity check).
func (s *SlabAllocator) validObjectAddr(sl *slab, a layout.Addr) bool {
	base := s.m.layout.PFNToKVA(sl.head)
	end := base + layout.Addr(uint64(layout.PageSize)<<sl.order)
	if a < base || a >= end {
		return false
	}
	return uint64(a-base)%sl.class == 0
}

// objAddr returns the KVA of object idx on the slab.
func (s *SlabAllocator) objAddr(sl *slab, idx int) layout.Addr {
	return s.m.layout.PFNToKVA(sl.head) + layout.Addr(uint64(idx)*sl.class)
}

// objIndex returns the object index containing the address.
func (s *SlabAllocator) objIndex(sl *slab, a layout.Addr) int {
	base := s.m.layout.PFNToKVA(sl.head)
	return int(uint64(a-base) / sl.class)
}

// objectOf resolves an address to its slab and object index.
func (s *SlabAllocator) objectOf(a layout.Addr) (*slab, int, error) {
	pfn, err := s.m.layout.KVAToPFN(a)
	if err != nil {
		return nil, 0, err
	}
	sl, ok := s.byPage[pfn]
	if !ok {
		return nil, 0, fmt.Errorf("mem: %#x is not a slab address", uint64(a))
	}
	idx := s.objIndex(sl, a)
	if idx < 0 || idx >= sl.objects {
		return nil, 0, fmt.Errorf("mem: %#x outside slab objects", uint64(a))
	}
	return sl, idx, nil
}
