package mem

import "dmafault/internal/layout"

// PageFlag marks the role a physical page currently plays, mirroring the
// struct page flags the kernel keeps in the vmemmap.
type PageFlag uint32

const (
	// FlagFree marks a page owned by the buddy allocator.
	FlagFree PageFlag = 1 << iota
	// FlagSlab marks a page backing a kmalloc slab.
	FlagSlab
	// FlagFrag marks a page that is part of a page_frag compound region.
	FlagFrag
	// FlagCompoundHead marks the head page of a high-order allocation.
	FlagCompoundHead
	// FlagCompoundTail marks a tail page of a high-order allocation.
	FlagCompoundTail
	// FlagReserved marks pages carved out at boot (kernel image, etc.).
	FlagReserved
)

// PageInfo is the simulated struct page: per-frame metadata the kernel (and
// our tools) consult. DMA mapping state is tracked here so that tests and
// the sanitizer can ask "how many IOVAs currently map this frame?" — the
// heart of type (c) sub-page vulnerabilities.
type PageInfo struct {
	Flags PageFlag
	// RefCount counts users of the frame: 1 for an allocated page, +1 per
	// outstanding page_frag slice, etc. A frame returns to the buddy
	// allocator only when it drops to zero.
	RefCount int
	// Order is the buddy order of the allocation this frame belongs to
	// (meaningful on the head page).
	Order uint
	// CompoundHead is the PFN of the head page when FlagCompoundTail is set.
	CompoundHead layout.PFN
	// SlabClass is the kmalloc size class when FlagSlab is set.
	SlabClass uint64
	// DMAMapCount is the number of live IOVA mappings covering this frame.
	DMAMapCount int
	// DMAWritable is true while at least one live mapping grants the device
	// WRITE (or BIDIRECTIONAL) access to the frame.
	DMAWritable bool
}

// Has reports whether all given flags are set.
func (pi *PageInfo) Has(f PageFlag) bool { return pi.Flags&f == f }

// DMAMapped reports whether any IOVA currently maps the frame.
func (pi *PageInfo) DMAMapped() bool { return pi.DMAMapCount > 0 }

// MarkDMAMapped records one more live mapping of the frame. The dma package
// calls this on map.
func (pi *PageInfo) MarkDMAMapped(writable bool) {
	pi.DMAMapCount++
	if writable {
		pi.DMAWritable = true
	}
}

// ClearDMAMapped records the removal of one live mapping. When the count
// reaches zero the writable sticky bit clears too.
func (pi *PageInfo) ClearDMAMapped() {
	if pi.DMAMapCount > 0 {
		pi.DMAMapCount--
	}
	if pi.DMAMapCount == 0 {
		pi.DMAWritable = false
	}
}
