// Package mem simulates the physical memory of the victim machine together
// with the three kernel allocators whose placement policies create sub-page
// DMA vulnerabilities (§3.2 of the paper):
//
//   - a buddy page allocator with per-CPU hot-page caches (Linux reuses
//     recently freed pages immediately, §5.2.1 attack option 2);
//   - a SLUB-style kmalloc whose slabs pack same-size objects onto shared
//     pages and keep the freelist pointer *inside* free objects — the "OS
//     metadata on the I/O page" of vulnerability type (b) and the random
//     co-location of type (d);
//   - the page_frag allocator (§5.2.2, Fig. 5), which slices per-CPU 32 KiB
//     compound regions into consecutive buffers and is the root cause of
//     type (c) vulnerabilities (multiple IOVAs mapping the same page).
//
// All memory is a plain byte slice; kernel virtual addresses are interpreted
// through a layout.Layout. CPU-side accesses flow through Memory.Read/Write
// so that a sanitizer (D-KASAN) can observe them; device-side DMA accesses
// use the physical Read/WritePhys path via the IOMMU bus.
package mem

import (
	"encoding/binary"
	"fmt"

	"dmafault/internal/layout"
)

// Tracer observes allocator and CPU-access events. The D-KASAN sanitizer
// implements it; the zero value of Memory uses a nil tracer (no tracing).
type Tracer interface {
	// OnKmalloc fires after a kmalloc object is handed out.
	OnKmalloc(addr layout.Addr, size uint64, site string)
	// OnKfree fires before a kmalloc object is returned to its slab.
	OnKfree(addr layout.Addr, size uint64)
	// OnPageAlloc fires after 2^order pages starting at pfn are handed out.
	OnPageAlloc(pfn layout.PFN, order uint)
	// OnPageFree fires before 2^order pages starting at pfn are freed.
	OnPageFree(pfn layout.PFN, order uint)
	// OnCPUAccess fires on every CPU load/store through Memory.Read/Write.
	OnCPUAccess(addr layout.Addr, size uint64, write bool)
}

// Config sizes the simulated machine's memory subsystem.
type Config struct {
	Layout *layout.Layout
	// CPUs is the number of simulated cores; page_frag caches and hot-page
	// caches are per-CPU.
	CPUs int
	// Tracer, if non-nil, observes allocator and access events.
	Tracer Tracer
	// Inject, if non-nil, is the fault-injection hook consulted on every
	// page-block allocation (the buddy allocator feeds the slab and
	// page_frag paths too, so one hook site models allocator pressure
	// everywhere). internal/faultinject implements it.
	Inject AllocInjector
}

// AllocInjector is the allocator-pressure fault-injection hook: true makes
// the allocation fail with an error wrapping faultinject.ErrTransient.
type AllocInjector interface {
	InjectAllocFailure() bool
}

// Memory is the simulated physical memory plus its allocators.
type Memory struct {
	layout *layout.Layout
	data   []byte
	pages  []PageInfo
	tracer Tracer
	inject AllocInjector

	Pages *PageAllocator
	Slab  *SlabAllocator
	Frag  *FragAllocator
}

// New builds a machine memory of cfg.Layout.PhysBytes bytes.
func New(cfg Config) (*Memory, error) {
	if cfg.Layout == nil {
		return nil, fmt.Errorf("mem: nil layout")
	}
	if cfg.Layout.PhysBytes%layout.PageSize != 0 {
		return nil, fmt.Errorf("mem: PhysBytes %d not page aligned", cfg.Layout.PhysBytes)
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 1
	}
	m := &Memory{
		layout: cfg.Layout,
		data:   make([]byte, cfg.Layout.PhysBytes),
		pages:  make([]PageInfo, cfg.Layout.PhysBytes/layout.PageSize),
		tracer: cfg.Tracer,
		inject: cfg.Inject,
	}
	var err error
	m.Pages, err = newPageAllocator(m, cfg.CPUs)
	if err != nil {
		return nil, err
	}
	m.Slab = newSlabAllocator(m)
	m.Frag = newFragAllocator(m, cfg.CPUs)
	return m, nil
}

// Layout returns the virtual memory layout this memory is interpreted under.
func (m *Memory) Layout() *layout.Layout { return m.layout }

// NumPages returns the number of simulated physical page frames.
func (m *Memory) NumPages() int { return len(m.pages) }

// Page returns the metadata of a page frame (the simulated struct page).
func (m *Memory) Page(p layout.PFN) (*PageInfo, error) {
	if uint64(p) >= uint64(len(m.pages)) {
		return nil, fmt.Errorf("mem: PFN %d out of range (max %d)", p, len(m.pages)-1)
	}
	return &m.pages[p], nil
}

// mustPage is Page for internal callers that already validated the PFN.
func (m *Memory) mustPage(p layout.PFN) *PageInfo { return &m.pages[p] }

// checkPhys validates a physical range.
func (m *Memory) checkPhys(pa, n uint64) error {
	if pa >= uint64(len(m.data)) || n > uint64(len(m.data))-pa {
		return fmt.Errorf("mem: physical range [%#x,+%d) out of bounds", pa, n)
	}
	return nil
}

// ReadPhys copies simulated physical memory into buf. It is the device-side
// access primitive: no CPU tracer events fire.
func (m *Memory) ReadPhys(pa uint64, buf []byte) error {
	if err := m.checkPhys(pa, uint64(len(buf))); err != nil {
		return err
	}
	copy(buf, m.data[pa:])
	return nil
}

// WritePhys copies buf into simulated physical memory (device-side).
func (m *Memory) WritePhys(pa uint64, buf []byte) error {
	if err := m.checkPhys(pa, uint64(len(buf))); err != nil {
		return err
	}
	copy(m.data[pa:], buf)
	return nil
}

// Read performs a CPU load from a direct-map KVA.
func (m *Memory) Read(a layout.Addr, buf []byte) error {
	pa, err := m.layout.KVAToPhys(a)
	if err != nil {
		return err
	}
	if err := m.checkPhys(pa, uint64(len(buf))); err != nil {
		return err
	}
	if m.tracer != nil {
		m.tracer.OnCPUAccess(a, uint64(len(buf)), false)
	}
	copy(buf, m.data[pa:])
	return nil
}

// Write performs a CPU store to a direct-map KVA.
func (m *Memory) Write(a layout.Addr, buf []byte) error {
	pa, err := m.layout.KVAToPhys(a)
	if err != nil {
		return err
	}
	if err := m.checkPhys(pa, uint64(len(buf))); err != nil {
		return err
	}
	if m.tracer != nil {
		m.tracer.OnCPUAccess(a, uint64(len(buf)), true)
	}
	copy(m.data[pa:], buf)
	return nil
}

// ReadU64 loads a little-endian 64-bit word (CPU side).
func (m *Memory) ReadU64(a layout.Addr) (uint64, error) {
	var b [8]byte
	if err := m.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 stores a little-endian 64-bit word (CPU side).
func (m *Memory) WriteU64(a layout.Addr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.Write(a, b[:])
}

// ReadU32 loads a little-endian 32-bit word (CPU side).
func (m *Memory) ReadU32(a layout.Addr) (uint32, error) {
	var b [4]byte
	if err := m.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// WriteU32 stores a little-endian 32-bit word (CPU side).
func (m *Memory) WriteU32(a layout.Addr, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return m.Write(a, b[:])
}

// ReadU16 loads a little-endian 16-bit word (CPU side).
func (m *Memory) ReadU16(a layout.Addr) (uint16, error) {
	var b [2]byte
	if err := m.Read(a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

// WriteU16 stores a little-endian 16-bit word (CPU side).
func (m *Memory) WriteU16(a layout.Addr, v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return m.Write(a, b[:])
}

// Memset fills a KVA range with a byte value (CPU side).
func (m *Memory) Memset(a layout.Addr, v byte, n uint64) error {
	pa, err := m.layout.KVAToPhys(a)
	if err != nil {
		return err
	}
	if err := m.checkPhys(pa, n); err != nil {
		return err
	}
	if m.tracer != nil {
		m.tracer.OnCPUAccess(a, n, true)
	}
	for i := uint64(0); i < n; i++ {
		m.data[pa+i] = v
	}
	return nil
}

// tracerOnKmalloc and friends centralize nil checks.
func (m *Memory) tracerOnKmalloc(a layout.Addr, size uint64, site string) {
	if m.tracer != nil {
		m.tracer.OnKmalloc(a, size, site)
	}
}
func (m *Memory) tracerOnKfree(a layout.Addr, size uint64) {
	if m.tracer != nil {
		m.tracer.OnKfree(a, size)
	}
}
func (m *Memory) tracerOnPageAlloc(p layout.PFN, order uint) {
	if m.tracer != nil {
		m.tracer.OnPageAlloc(p, order)
	}
}
func (m *Memory) tracerOnPageFree(p layout.PFN, order uint) {
	if m.tracer != nil {
		m.tracer.OnPageFree(p, order)
	}
}
