package mem

import (
	"fmt"

	"dmafault/internal/layout"
)

// Page spraying ("Take a Step Further"): after a kernel path frees a
// DMA-exposed page block, an attacker-influencable allocation burst tries to
// land a kernel object on the same frames while a device still holds a stale
// IOTLB entry for them. The buddy allocator's LIFO freelists make this
// nearly deterministic for order>0 blocks — the very next same-order
// allocation reuses the block just freed — while order-0 frees detour
// through the per-CPU hot cache first. SpraySet records where the burst
// landed so an attack can test for a hit.

// SprayPattern sizes one spray pass.
type SprayPattern struct {
	// Blocks is the number of allocations the burst performs.
	Blocks int
	// Order is the buddy order of each allocation.
	Order uint
}

// SpraySet is the outcome of a spray pass: the head PFN of every block the
// burst obtained, in allocation order.
type SpraySet struct {
	Order uint
	PFNs  []layout.PFN
}

// Spray performs pattern.Blocks allocations of 2^pattern.Order pages on the
// given CPU. An allocation failure (exhaustion or injected pressure) stops
// the burst; the partial set is returned alongside the error so callers can
// still release what was obtained.
func (pa *PageAllocator) Spray(cpu int, pattern SprayPattern) (*SpraySet, error) {
	if pattern.Order > MaxOrder {
		return nil, fmt.Errorf("mem: spray order %d exceeds MaxOrder %d", pattern.Order, MaxOrder)
	}
	set := &SpraySet{Order: pattern.Order}
	for i := 0; i < pattern.Blocks; i++ {
		pfn, err := pa.AllocPages(cpu, pattern.Order)
		if err != nil {
			return set, fmt.Errorf("mem: spray block %d/%d: %w", i, pattern.Blocks, err)
		}
		set.PFNs = append(set.PFNs, pfn)
	}
	return set, nil
}

// ReleaseSpray frees every block of a spray pass (partial sets included).
func (pa *PageAllocator) ReleaseSpray(cpu int, set *SpraySet) error {
	if set == nil {
		return nil
	}
	var firstErr error
	for _, pfn := range set.PFNs {
		if err := pa.Free(cpu, pfn, set.Order); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	set.PFNs = nil
	return firstErr
}

// Contains reports which sprayed block (by index) covers the given frame,
// if any — the hit test for a spray pass aimed at a just-freed block.
func (s *SpraySet) Contains(p layout.PFN) (int, bool) {
	if s == nil {
		return 0, false
	}
	span := layout.PFN(1) << s.Order
	for i, head := range s.PFNs {
		if p >= head && p < head+span {
			return i, true
		}
	}
	return 0, false
}
