package mem

import (
	"fmt"

	"dmafault/internal/faultinject"
	"dmafault/internal/layout"
)

// MaxOrder is the largest supported buddy order (2^3 pages = 32 KiB, the
// page_frag region size; the mlx5 HW-LRO path uses order-4 64 KiB buffers).
const MaxOrder = 4

// hotCacheSize bounds the per-CPU cache of recently freed order-0 pages.
// Linux prefers hot pages because they likely still sit in CPU caches
// (§5.2.1: "fast reuse is a common scenario"), which is what lets a device
// holding a stale IOTLB entry corrupt a page after its reuse.
const hotCacheSize = 16

// PageAllocator is a buddy allocator over the simulated frames with per-CPU
// LIFO hot caches for order-0 pages.
type PageAllocator struct {
	m        *Memory
	free     [MaxOrder + 1][]layout.PFN // LIFO stacks per order
	hot      [][]layout.PFN             // per-CPU order-0 hot cache
	nfree    uint64
	reserved uint64
	stats    PageStats
}

// PageStats counts page allocator activity.
type PageStats struct {
	Allocs, Frees uint64
	// HotHits counts order-0 allocations served from a per-CPU hot cache —
	// the fast-reuse path that makes stale IOTLB windows exploitable.
	HotHits uint64
}

// Stats returns a copy of the counters.
func (pa *PageAllocator) Stats() PageStats { return pa.stats }

func newPageAllocator(m *Memory, cpus int) (*PageAllocator, error) {
	pa := &PageAllocator{m: m, hot: make([][]layout.PFN, cpus)}
	total := layout.PFN(m.NumPages())
	// Reserve the first 4 MiB for the "kernel image", as a real boot does.
	reserve := layout.PFN((4 << 20) / layout.PageSize)
	if reserve >= total {
		return nil, fmt.Errorf("mem: %d pages too small for boot reservation", total)
	}
	for p := layout.PFN(0); p < reserve; p++ {
		m.mustPage(p).Flags = FlagReserved
		m.mustPage(p).RefCount = 1
	}
	pa.reserved = uint64(reserve)
	// Seed the order-MaxOrder freelist with maximal blocks, low PFN on top
	// of the stack so early boot allocations are low and deterministic.
	blk := layout.PFN(1) << MaxOrder
	var starts []layout.PFN
	for p := (reserve + blk - 1) &^ (blk - 1); p+blk <= total; p += blk {
		starts = append(starts, p)
	}
	for i := len(starts) - 1; i >= 0; i-- {
		pa.pushFree(starts[i], MaxOrder)
	}
	// Frames between the reservation and the first aligned block, and the
	// tail remainder, are left reserved for simplicity.
	return pa, nil
}

func (pa *PageAllocator) pushFree(p layout.PFN, order uint) {
	pi := pa.m.mustPage(p)
	pi.Flags = FlagFree
	pi.Order = order
	pi.RefCount = 0
	pa.free[order] = append(pa.free[order], p)
	pa.nfree += 1 << order
}

func (pa *PageAllocator) popFree(order uint) (layout.PFN, bool) {
	s := pa.free[order]
	if len(s) == 0 {
		return 0, false
	}
	p := s[len(s)-1]
	pa.free[order] = s[:len(s)-1]
	pa.nfree -= 1 << order
	return p, true
}

// FreePages returns the number of frames currently free (buddy + hot caches).
func (pa *PageAllocator) FreePages() uint64 {
	n := pa.nfree
	for _, h := range pa.hot {
		n += uint64(len(h))
	}
	return n
}

// AllocPages allocates a 2^order contiguous, naturally aligned block and
// returns its head PFN. cpu selects the hot cache for order-0 requests.
func (pa *PageAllocator) AllocPages(cpu int, order uint) (layout.PFN, error) {
	if order > MaxOrder {
		return 0, fmt.Errorf("mem: order %d exceeds MaxOrder %d", order, MaxOrder)
	}
	if pa.m.inject != nil && pa.m.inject.InjectAllocFailure() {
		return 0, fmt.Errorf("mem: order-%d allocation failed under injected pressure: %w",
			order, faultinject.ErrTransient)
	}
	if order == 0 && cpu >= 0 && cpu < len(pa.hot) {
		if h := pa.hot[cpu]; len(h) > 0 {
			p := h[len(h)-1]
			pa.hot[cpu] = h[:len(h)-1]
			pa.stats.HotHits++
			pa.finishAlloc(p, 0)
			return p, nil
		}
	}
	// Find the smallest order with a free block, splitting down.
	for o := order; o <= MaxOrder; o++ {
		p, ok := pa.popFree(o)
		if !ok {
			continue
		}
		for cur := o; cur > order; cur-- {
			// Split: keep the low half, free the high half at cur-1.
			buddy := p + (layout.PFN(1) << (cur - 1))
			pa.pushFree(buddy, cur-1)
		}
		pa.finishAlloc(p, order)
		return p, nil
	}
	return 0, fmt.Errorf("mem: out of pages (order %d request, %d frames free)", order, pa.nfree)
}

func (pa *PageAllocator) finishAlloc(p layout.PFN, order uint) {
	pa.stats.Allocs++
	head := pa.m.mustPage(p)
	head.Flags = 0
	head.Order = order
	head.RefCount = 1
	if order > 0 {
		head.Flags |= FlagCompoundHead
		for i := layout.PFN(1); i < layout.PFN(1)<<order; i++ {
			t := pa.m.mustPage(p + i)
			t.Flags = FlagCompoundTail
			t.CompoundHead = p
			t.Order = 0
			t.RefCount = 0
		}
	}
	pa.m.tracerOnPageAlloc(p, order)
}

// Free returns a block to the allocator. Order-0 pages go to the CPU's hot
// cache first (LIFO), so the very next allocation on that CPU reuses them —
// the behaviour that makes stale IOTLB windows exploitable.
func (pa *PageAllocator) Free(cpu int, p layout.PFN, order uint) error {
	if uint64(p) >= uint64(pa.m.NumPages()) {
		return fmt.Errorf("mem: free of PFN %d out of range", p)
	}
	pi := pa.m.mustPage(p)
	if pi.Has(FlagFree) {
		return fmt.Errorf("mem: double free of PFN %d", p)
	}
	if pi.Has(FlagCompoundTail) {
		return fmt.Errorf("mem: free of compound tail PFN %d", p)
	}
	if pi.Has(FlagReserved) {
		return fmt.Errorf("mem: free of reserved PFN %d", p)
	}
	if pi.RefCount > 1 {
		pi.RefCount--
		return nil
	}
	pa.m.tracerOnPageFree(p, order)
	pa.stats.Frees++
	pi.RefCount = 0
	if order == 0 && cpu >= 0 && cpu < len(pa.hot) && len(pa.hot[cpu]) < hotCacheSize {
		pi.Flags = FlagFree
		pi.Order = 0
		pa.hot[cpu] = append(pa.hot[cpu], p)
		return nil
	}
	pa.freeToBuddy(p, order)
	return nil
}

// GetPage increments the refcount of an allocated head page (get_page).
func (pa *PageAllocator) GetPage(p layout.PFN) error {
	pi, err := pa.m.Page(p)
	if err != nil {
		return err
	}
	if pi.Has(FlagCompoundTail) {
		return pa.GetPage(pi.CompoundHead)
	}
	if pi.Has(FlagFree) || pi.RefCount == 0 {
		return fmt.Errorf("mem: get_page on free PFN %d", p)
	}
	pi.RefCount++
	return nil
}

// PutPage decrements the refcount of a head page, freeing the block when it
// drops to zero (put_page).
func (pa *PageAllocator) PutPage(cpu int, p layout.PFN) error {
	pi, err := pa.m.Page(p)
	if err != nil {
		return err
	}
	if pi.Has(FlagCompoundTail) {
		return pa.PutPage(cpu, pi.CompoundHead)
	}
	if pi.RefCount <= 0 {
		return fmt.Errorf("mem: put_page on PFN %d with refcount %d", p, pi.RefCount)
	}
	pi.RefCount--
	if pi.RefCount == 0 {
		order := pi.Order
		pi.RefCount = 1 // Free() expects a live page
		return pa.Free(cpu, p, order)
	}
	return nil
}

// freeToBuddy merges the block with its buddy as far as possible.
func (pa *PageAllocator) freeToBuddy(p layout.PFN, order uint) {
	// Clear compound tails.
	if order > 0 {
		for i := layout.PFN(1); i < layout.PFN(1)<<order; i++ {
			t := pa.m.mustPage(p + i)
			t.Flags = 0
			t.CompoundHead = 0
		}
	}
	for order < MaxOrder {
		buddy := p ^ (layout.PFN(1) << order)
		if uint64(buddy) >= uint64(pa.m.NumPages()) {
			break
		}
		bi := pa.m.mustPage(buddy)
		if !bi.Has(FlagFree) || bi.Order != order {
			break
		}
		// Remove buddy from its freelist.
		if !pa.removeFree(buddy, order) {
			break
		}
		bi.Flags = 0
		if buddy < p {
			p = buddy
		}
		order++
	}
	pa.pushFree(p, order)
}

func (pa *PageAllocator) removeFree(p layout.PFN, order uint) bool {
	s := pa.free[order]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == p {
			pa.free[order] = append(s[:i], s[i+1:]...)
			pa.nfree -= 1 << order
			return true
		}
	}
	return false
}

// DrainHotCaches flushes all per-CPU hot caches back to the buddy lists
// (used by tests and by the boot simulator between phases).
func (pa *PageAllocator) DrainHotCaches() {
	for cpu, h := range pa.hot {
		for _, p := range h {
			pa.m.mustPage(p).Flags = 0
			pa.freeToBuddy(p, 0)
		}
		pa.hot[cpu] = pa.hot[cpu][:0]
	}
}
