package mem

import (
	"fmt"

	"dmafault/internal/layout"
)

// FragRegionOrder is the buddy order of a page_frag region: 2^3 pages =
// 32 KiB, "usually 32 KB" per §5.2.2.
const FragRegionOrder = 3

// FragRegionBytes is the size of one page_frag region.
const FragRegionBytes = layout.PageSize << FragRegionOrder

// FragAllocator is the page_frag allocator of §5.2.2 and Fig. 5: per-CPU
// contiguous regions carved from the back (offset decrements), handing out
// consecutive small buffers that routinely share physical pages. Network
// drivers allocate RX data buffers from it (netdev_alloc_skb,
// napi_alloc_skb), which is why pairs of successive RX descriptors map the
// same page — sub-page vulnerability type (c).
type FragAllocator struct {
	m     *Memory
	cpus  []fragCache
	stats FragStats
}

type fragCache struct {
	head   layout.PFN // compound head of the current region; 0 = none
	va     layout.Addr
	offset uint64 // next allocation ends here; counts down
	live   bool
}

// FragStats counts allocator activity.
type FragStats struct {
	Allocs, Regions uint64
}

func newFragAllocator(m *Memory, cpus int) *FragAllocator {
	return &FragAllocator{m: m, cpus: make([]fragCache, cpus)}
}

// Stats returns a copy of the allocator statistics.
func (f *FragAllocator) Stats() FragStats { return f.stats }

// Alloc carves size bytes (aligned down to align, which must be a power of
// two; 0 means cache-line 64) from the CPU's current region, refilling the
// region when exhausted. Each live fragment holds one page reference on the
// region's head page, so the region's frames stay allocated as long as any
// fragment (equivalently: any RX buffer on it) is alive.
func (f *FragAllocator) Alloc(cpu int, size uint64, align uint64) (layout.Addr, error) {
	if cpu < 0 || cpu >= len(f.cpus) {
		return 0, fmt.Errorf("mem: page_frag alloc on invalid cpu %d", cpu)
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: page_frag align %d not a power of two", align)
	}
	if size == 0 || size > FragRegionBytes {
		return 0, fmt.Errorf("mem: page_frag alloc of %d bytes (max %d)", size, FragRegionBytes)
	}
	c := &f.cpus[cpu]
	if !c.live || c.offset < size {
		if err := f.refill(cpu, c); err != nil {
			return 0, err
		}
	}
	// offset -= size, then align down; the returned address is va+offset.
	off := (c.offset - size) &^ (align - 1)
	c.offset = off
	addr := c.va + layout.Addr(off)
	// One page reference per fragment (page_frag refcounting).
	if err := f.m.Pages.GetPage(c.head); err != nil {
		return 0, err
	}
	f.stats.Allocs++
	return addr, nil
}

// refill replaces the CPU's region with a fresh 32 KiB compound allocation.
// The old region keeps living until its outstanding fragments drop their
// references (handled by Free/put_page).
func (f *FragAllocator) refill(cpu int, c *fragCache) error {
	if c.live {
		// Drop the allocator's own reference on the old region.
		if err := f.m.Pages.PutPage(cpu, c.head); err != nil {
			return err
		}
	}
	head, err := f.m.Pages.AllocPages(cpu, FragRegionOrder)
	if err != nil {
		c.live = false
		return err
	}
	for i := layout.PFN(0); i < 1<<FragRegionOrder; i++ {
		f.m.mustPage(head + i).Flags |= FlagFrag
	}
	c.head = head
	c.va = f.m.layout.PFNToKVA(head)
	c.offset = FragRegionBytes
	c.live = true
	f.stats.Regions++
	return nil
}

// Free releases one fragment: it drops the fragment's page reference. The
// frames return to the buddy allocator only when the last fragment (and the
// allocator itself, once it moved on) let go.
func (f *FragAllocator) Free(cpu int, a layout.Addr) error {
	pfn, err := f.m.layout.KVAToPFN(a)
	if err != nil {
		return err
	}
	pi := f.m.mustPage(pfn)
	if !pi.Has(FlagFrag) && !(pi.Has(FlagCompoundTail) && f.m.mustPage(pi.CompoundHead).Has(FlagFrag)) {
		return fmt.Errorf("mem: page_frag free of non-frag address %#x", uint64(a))
	}
	return f.m.Pages.PutPage(cpu, pfn)
}

// DropCaches releases the allocator's own reference on the CPU's current
// region, as if the allocator were torn down. Outstanding fragments keep the
// region alive until freed. Used by tests and the boot simulator.
func (f *FragAllocator) DropCaches(cpu int) error {
	if cpu < 0 || cpu >= len(f.cpus) {
		return fmt.Errorf("mem: page_frag drop on invalid cpu %d", cpu)
	}
	c := &f.cpus[cpu]
	if !c.live {
		return nil
	}
	c.live = false
	return f.m.Pages.PutPage(cpu, c.head)
}

// RegionOf returns the compound head PFN of the region containing the
// address, for tests asserting co-location.
func (f *FragAllocator) RegionOf(a layout.Addr) (layout.PFN, error) {
	pfn, err := f.m.layout.KVAToPFN(a)
	if err != nil {
		return 0, err
	}
	pi := f.m.mustPage(pfn)
	if pi.Has(FlagCompoundTail) {
		return pi.CompoundHead, nil
	}
	return pfn, nil
}
