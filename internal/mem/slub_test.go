package mem

import (
	"testing"
	"testing/quick"

	"dmafault/internal/layout"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint64
	}{
		{1, 8}, {8, 8}, {9, 16}, {65, 96}, {100, 128}, {129, 192},
		{512, 512}, {513, 1024}, {4097, 8192}, {8192, 8192},
	}
	for _, c := range cases {
		got, err := ClassFor(c.n)
		if err != nil || got != c.want {
			t.Errorf("ClassFor(%d) = %d, %v; want %d", c.n, got, err, c.want)
		}
	}
	if _, err := ClassFor(0); err == nil {
		t.Error("ClassFor(0) accepted")
	}
	if _, err := ClassFor(KmallocMax + 1); err == nil {
		t.Error("oversized request accepted")
	}
}

func TestKmallocSameClassSharesPage(t *testing.T) {
	// Vulnerability type (d): objects of similar size share a page.
	m := newTestMemory(t, 32<<20, 1)
	a, err := m.Slab.Kmalloc(0, 512, "netdev_rx")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Slab.Kmalloc(0, 500, "load_elf_phdrs")
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := m.Layout().KVAToPFN(a)
	pb, _ := m.Layout().KVAToPFN(b)
	// 512-class slabs are order-1 (2 pages, 8 objects): the first two
	// objects are adjacent, on the same or consecutive pages of one slab.
	if pb-pa > 1 {
		t.Errorf("same-class objects far apart: PFN %d vs %d", pa, pb)
	}
	objs := m.Slab.ObjectsOnPage(pa)
	if len(objs) == 0 {
		t.Fatal("ObjectsOnPage empty for slab page")
	}
	foundA := false
	for _, o := range objs {
		if o.Addr == a && o.Live && o.Site == "netdev_rx" {
			foundA = true
		}
	}
	if !foundA {
		t.Error("allocated object not reported on its page")
	}
}

func TestKmallocAscendingWithinSlab(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	var prev layout.Addr
	for i := 0; i < 8; i++ {
		a, err := m.Slab.Kmalloc(0, 64, "t")
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && a != prev+64 {
			t.Fatalf("allocation %d at %#x, want %#x (fresh slab allocates ascending)", i, uint64(a), uint64(prev+64))
		}
		prev = a
	}
}

func TestKmallocNotZeroedButKzallocIs(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	a, err := m.Slab.Kmalloc(0, 64, "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Memset(a, 0xAB, 64); err != nil {
		t.Fatal(err)
	}
	if err := m.Slab.Kfree(a); err != nil {
		t.Fatal(err)
	}
	b, err := m.Slab.Kmalloc(0, 64, "t")
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Fatalf("LIFO freelist should return the same object: %#x vs %#x", uint64(b), uint64(a))
	}
	// Bytes past the freelist pointer retain stale data (leak realism).
	var buf [1]byte
	if err := m.Read(b+16, buf[:]); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Errorf("stale data scrubbed: %#x", buf[0])
	}
	if err := m.Slab.Kfree(b); err != nil {
		t.Fatal(err)
	}
	c, err := m.Slab.Kzalloc(0, 64, "t")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ReadU64(c + 16)
	if v != 0 {
		t.Errorf("kzalloc left dirty bytes: %#x", v)
	}
}

func TestFreelistPointerLivesInObject(t *testing.T) {
	// The SLUB freelist pointer is stored in the first 8 bytes of each free
	// object in (simulated) memory — this is the exposed OS metadata of
	// Fig. 1(b): a device with the page mapped can read and corrupt it.
	m := newTestMemory(t, 32<<20, 1)
	a, _ := m.Slab.Kmalloc(0, 128, "t")
	b, _ := m.Slab.Kmalloc(0, 128, "t")
	if err := m.Slab.Kfree(b); err != nil {
		t.Fatal(err)
	}
	if err := m.Slab.Kfree(a); err != nil {
		t.Fatal(err)
	}
	// a was freed last, so a heads the freelist and a's first word points
	// to b.
	next, err := m.ReadU64(a)
	if err != nil {
		t.Fatal(err)
	}
	if layout.Addr(next) != b {
		t.Errorf("freelist word in object a = %#x, want %#x", next, uint64(b))
	}
}

func TestKfreeErrors(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	a, _ := m.Slab.Kmalloc(0, 256, "t")
	if err := m.Slab.Kfree(a + 8); err == nil {
		t.Error("interior-pointer kfree accepted")
	}
	if err := m.Slab.Kfree(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Slab.Kfree(a); err == nil {
		t.Error("double kfree accepted")
	}
	if err := m.Slab.Kfree(m.Layout().PFNToKVA(2000)); err == nil {
		t.Error("kfree of non-slab address accepted")
	}
}

func TestSizeOfAndSiteOf(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	a, _ := m.Slab.Kmalloc(0, 100, "sock_alloc_inode+0x4f")
	sz, err := m.Slab.SizeOf(a)
	if err != nil || sz != 128 {
		t.Errorf("SizeOf = %d, %v; want 128", sz, err)
	}
	site, err := m.Slab.SiteOf(a)
	if err != nil || site != "sock_alloc_inode+0x4f" {
		t.Errorf("SiteOf = %q, %v", site, err)
	}
	if err := m.Slab.Kfree(a); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Slab.SizeOf(a); err == nil {
		t.Error("SizeOf of free object accepted")
	}
	if _, err := m.Slab.SiteOf(a); err == nil {
		t.Error("SiteOf of free object accepted")
	}
}

func TestSlabLifecycle(t *testing.T) {
	m := newTestMemory(t, 32<<20, 1)
	// kmalloc-4096 slabs are order-3 with 8 objects.
	var addrs []layout.Addr
	for i := 0; i < 8; i++ {
		a, err := m.Slab.Kmalloc(0, 4096, "t")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	st := m.Slab.Stats()
	if st.SlabsCreated != 1 {
		t.Errorf("SlabsCreated = %d, want 1", st.SlabsCreated)
	}
	// Ninth allocation opens a second slab.
	extra, err := m.Slab.Kmalloc(0, 4096, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Slab.Stats().SlabsCreated; got != 2 {
		t.Errorf("SlabsCreated = %d, want 2", got)
	}
	// Free one object of the full slab: it becomes partial again and serves
	// the next allocation.
	if err := m.Slab.Kfree(addrs[3]); err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs[:3] {
		if err := m.Slab.Kfree(a); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range addrs[4:] {
		if err := m.Slab.Kfree(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Slab.Stats().SlabsDestroyed; got != 1 {
		t.Errorf("SlabsDestroyed = %d, want 1", got)
	}
	if err := m.Slab.Kfree(extra); err != nil {
		t.Fatal(err)
	}
	if got := m.Slab.Stats().SlabsDestroyed; got != 2 {
		t.Errorf("SlabsDestroyed = %d, want 2", got)
	}
	// All slab pages returned.
	if got := m.Slab.ObjectsOnPage(0); got != nil {
		t.Error("reserved page reported as slab")
	}
}

// Property: live kmalloc objects never overlap and stay within their class.
func TestPropertyKmallocNoOverlap(t *testing.T) {
	f := func(sizes []uint16) bool {
		m := newTestMemory(t, 32<<20, 1)
		type obj struct {
			a layout.Addr
			n uint64
		}
		var live []obj
		for i, s := range sizes {
			n := uint64(s)%KmallocMax + 1
			if i%3 == 2 && len(live) > 0 {
				if err := m.Slab.Kfree(live[0].a); err != nil {
					return false
				}
				live = live[1:]
				continue
			}
			a, err := m.Slab.Kmalloc(0, n, "p")
			if err != nil {
				continue
			}
			class, _ := ClassFor(n)
			for _, o := range live {
				oc, _ := ClassFor(o.n)
				if a < o.a+layout.Addr(oc) && o.a < a+layout.Addr(class) {
					return false
				}
			}
			live = append(live, obj{a, n})
		}
		for _, o := range live {
			if err := m.Slab.Kfree(o.a); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
