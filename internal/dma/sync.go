package dma

import (
	"fmt"

	"dmafault/internal/iommu"
)

// The dma_sync_single_for_{cpu,device} half of the DMA API (§2.3): on
// coherent simulated hardware these are ownership-transfer points, not cache
// operations, but modeling them matters for two reasons. First, drivers that
// "peek" at RX buffers mid-DMA call sync_for_cpu, and D-KASAN's
// access-after-map class keys on exactly the accesses that happen *without*
// such a transfer. Second, the ownership state machine (device-owned between
// map/sync_for_device and sync_for_cpu/unmap) is the contract whose
// violations the paper's Fig. 7(i) driver-ordering bug consists of.

// Owner says who may touch a mapped buffer right now.
type Owner int

const (
	// OwnerDevice: between map (or sync_for_device) and sync_for_cpu/unmap.
	OwnerDevice Owner = iota
	// OwnerCPU: between sync_for_cpu and sync_for_device.
	OwnerCPU
)

// String names the owner.
func (o Owner) String() string {
	if o == OwnerCPU {
		return "cpu"
	}
	return "device"
}

// SyncForCPU transfers ownership of a live mapping to the CPU, permitting
// CPU reads of device-written data before the unmap.
func (mp *Mapper) SyncForCPU(dev iommu.DeviceID, va iommu.IOVA) error {
	m, ok := mp.active[mapKey{dev, va &^ iommu.IOVA(4095)}]
	if !ok {
		return fmt.Errorf("dma: sync_for_cpu on unmapped IOVA %#x", uint64(va))
	}
	if m.owner == OwnerCPU {
		return fmt.Errorf("dma: double sync_for_cpu on IOVA %#x", uint64(va))
	}
	m.owner = OwnerCPU
	mp.stats.Syncs++
	return nil
}

// SyncForDevice transfers ownership back to the device.
func (mp *Mapper) SyncForDevice(dev iommu.DeviceID, va iommu.IOVA) error {
	m, ok := mp.active[mapKey{dev, va &^ iommu.IOVA(4095)}]
	if !ok {
		return fmt.Errorf("dma: sync_for_device on unmapped IOVA %#x", uint64(va))
	}
	if m.owner == OwnerDevice {
		return fmt.Errorf("dma: double sync_for_device on IOVA %#x", uint64(va))
	}
	m.owner = OwnerDevice
	mp.stats.Syncs++
	return nil
}

// OwnerOf reports the current owner of a live mapping.
func (mp *Mapper) OwnerOf(dev iommu.DeviceID, va iommu.IOVA) (Owner, error) {
	m, ok := mp.active[mapKey{dev, va &^ iommu.IOVA(4095)}]
	if !ok {
		return OwnerDevice, fmt.Errorf("dma: OwnerOf on unmapped IOVA %#x", uint64(va))
	}
	return m.owner, nil
}
