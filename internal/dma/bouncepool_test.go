package dma

import (
	"bytes"
	"testing"

	"dmafault/internal/iommu"
)

func TestBouncePoolRoundTripAndZeroing(t *testing.T) {
	w := newWorld(t, iommu.Deferred)
	p, err := NewBouncePool(w.mem, w.mp, nic, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	kva, _ := w.mem.Slab.Kmalloc(0, 512, "rx")
	va, err := p.Map(kva, 512, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeSlots() != 3 {
		t.Errorf("FreeSlots = %d", p.FreeSlots())
	}
	if err := w.bus.Write(nic, va, []byte("payload!")); err != nil {
		t.Fatal(err)
	}
	if err := p.Unmap(va, 512, FromDevice); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	if err := w.mem.Read(kva, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("payload!")) {
		t.Errorf("copy-back = %q", got)
	}
	// Cross-I/O leakage prevention: the slot was zeroed on release, so a
	// device read through the still-valid static mapping sees nothing.
	leak := make([]byte, 8)
	if err := w.bus.Read(nic, va, leak); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(leak, make([]byte, 8)) {
		t.Errorf("previous I/O leaked: %q", leak)
	}
}

func TestBouncePoolNoInvalidationWindow(t *testing.T) {
	// The defining property: a full map/IO/unmap cycle performs ZERO IOMMU
	// map/unmap operations, so deferred-vs-strict is moot.
	w := newWorld(t, iommu.Deferred)
	p, err := NewBouncePool(w.mem, w.mp, nic, 2)
	if err != nil {
		t.Fatal(err)
	}
	baseline := w.unit.Stats()
	kva, _ := w.mem.Slab.Kmalloc(0, 256, "io")
	for i := 0; i < 10; i++ {
		va, err := p.Map(kva, 256, Bidirectional)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.bus.Write(nic, va, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if err := p.Unmap(va, 256, Bidirectional); err != nil {
			t.Fatal(err)
		}
	}
	after := w.unit.Stats()
	if after.Maps != baseline.Maps || after.Unmaps != baseline.Unmaps {
		t.Errorf("pool I/O touched the IOMMU: %d→%d maps, %d→%d unmaps",
			baseline.Maps, after.Maps, baseline.Unmaps, after.Unmaps)
	}
	if after.GlobalFlushes != baseline.GlobalFlushes {
		t.Error("pool I/O triggered invalidations")
	}
}

func TestBouncePoolExhaustionAndErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	p, err := NewBouncePool(w.mem, w.mp, nic, 1)
	if err != nil {
		t.Fatal(err)
	}
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "io")
	va, err := p.Map(kva, 64, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Map(kva, 64, ToDevice); err == nil {
		t.Error("exhausted pool served a mapping")
	}
	if p.Stats().Exhaustions != 1 {
		t.Errorf("Exhaustions = %d", p.Stats().Exhaustions)
	}
	if err := p.Unmap(va, 128, ToDevice); err == nil {
		t.Error("mismatched unmap accepted")
	}
	if err := p.Unmap(va+4096, 64, ToDevice); err == nil {
		t.Error("unknown IOVA accepted")
	}
	if err := p.Unmap(va, 64, ToDevice); err != nil {
		t.Fatal(err)
	}
	if err := p.Unmap(va, 64, ToDevice); err == nil {
		t.Error("double unmap accepted")
	}
	if _, err := p.Map(kva, 8192, ToDevice); err == nil {
		t.Error("oversize accepted")
	}
	if _, err := NewBouncePool(w.mem, w.mp, nic, 0); err == nil {
		t.Error("zero-slot pool accepted")
	}
}
