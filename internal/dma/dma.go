// Package dma implements the kernel DMA API of §2.3 over the simulated IOMMU
// and memory: dma_map_single/dma_unmap_single, the page variants, and
// scatter/gather lists.
//
// The API faithfully reproduces the property §9.1 criticizes: dma_map_single
// takes a buffer pointer and a length, insinuating that only those bytes are
// exposed, while in fact every byte of every page the buffer touches becomes
// accessible to the device. Likewise dma_unmap_single insinuates that access
// is revoked, which deferred invalidation and type (c) co-located mappings
// make untrue.
package dma

import (
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// Direction is the DMA data direction, which determines the IOMMU permission
// of the mapping: TX buffers are mapped READ (device reads them), RX buffers
// WRITE, and e.g. XDP buffers BIDIRECTIONAL (§5.1).
type Direction int

const (
	// ToDevice maps the buffer for device reads (TX).
	ToDevice Direction = iota
	// FromDevice maps the buffer for device writes (RX).
	FromDevice
	// Bidirectional maps the buffer for both.
	Bidirectional
)

// Perm converts the direction to the IOMMU permission.
func (d Direction) Perm() iommu.Perm {
	switch d {
	case ToDevice:
		return iommu.PermRead
	case FromDevice:
		return iommu.PermWrite
	default:
		return iommu.PermBidir
	}
}

// String names the direction like the kernel's enum dma_data_direction.
func (d Direction) String() string {
	switch d {
	case ToDevice:
		return "DMA_TO_DEVICE"
	case FromDevice:
		return "DMA_FROM_DEVICE"
	default:
		return "DMA_BIDIRECTIONAL"
	}
}

// Hook observes map/unmap events; D-KASAN registers one.
type Hook interface {
	// OnMap fires after a successful mapping of [kva, kva+n).
	OnMap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction, iova iommu.IOVA)
	// OnUnmap fires after the translation is removed from the page table
	// (the IOTLB may still hold it under deferred invalidation).
	OnUnmap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction, iova iommu.IOVA)
}

// mapping records one live DMA mapping.
type mapping struct {
	dev   iommu.DeviceID
	kva   layout.Addr
	n     uint64
	dir   Direction
	iova  iommu.IOVA // page-aligned base
	pages []layout.PFN
	owner Owner // ownership per §2.3: the device owns the buffer while mapped
}

type mapKey struct {
	dev  iommu.DeviceID
	iova iommu.IOVA // page-aligned
}

// Mapper is the DMA API entry point.
type Mapper struct {
	mem    *mem.Memory
	unit   *iommu.IOMMU
	active map[mapKey]*mapping
	hooks  []Hook

	stats Stats
}

// Stats counts DMA API activity.
type Stats struct {
	MapSingles, Unmaps, SGMaps uint64
	PagesMapped                uint64
	Syncs                      uint64
}

// NewMapper builds the DMA API over a memory and an IOMMU.
func NewMapper(m *mem.Memory, u *iommu.IOMMU) *Mapper {
	return &Mapper{mem: m, unit: u, active: make(map[mapKey]*mapping)}
}

// AddHook registers a map/unmap observer.
func (mp *Mapper) AddHook(h Hook) { mp.hooks = append(mp.hooks, h) }

// Stats returns a copy of the counters.
func (mp *Mapper) Stats() Stats { return mp.stats }

// MapSingle is dma_map_single: it maps the n bytes at kva for the device and
// returns the IOVA of the first byte. Every page the range touches is mapped
// whole — the sub-page vulnerability.
func (mp *Mapper) MapSingle(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction) (iommu.IOVA, error) {
	if n == 0 {
		return 0, fmt.Errorf("dma: zero-length mapping at %#x", uint64(kva))
	}
	dom, err := mp.unit.DomainOf(dev)
	if err != nil {
		return 0, err
	}
	firstPFN, err := mp.mem.Layout().KVAToPFN(kva)
	if err != nil {
		return 0, fmt.Errorf("dma: map of non-direct-map address: %w", err)
	}
	lastPFN, err := mp.mem.Layout().KVAToPFN(kva + layout.Addr(n-1))
	if err != nil {
		return 0, fmt.Errorf("dma: map end beyond memory: %w", err)
	}
	offset := layout.PageOffsetOf(kva)
	span := (uint64(lastPFN-firstPFN) + 1) * layout.PageSize
	base, err := dom.AllocIOVA(span)
	if err != nil {
		return 0, err
	}
	m := &mapping{dev: dev, kva: kva, n: n, dir: dir, iova: base}
	for i := layout.PFN(0); firstPFN+i <= lastPFN; i++ {
		v := base + iommu.IOVA(uint64(i)*layout.PageSize)
		if err := mp.unit.Map(dev, v, firstPFN+i, dir.Perm()); err != nil {
			// Roll back what we mapped so far.
			for j := layout.PFN(0); j < i; j++ {
				_ = mp.unit.Unmap(dev, base+iommu.IOVA(uint64(j)*layout.PageSize))
				mp.pageInfo(firstPFN + j).ClearDMAMapped()
			}
			_ = dom.FreeIOVA(base, span)
			return 0, err
		}
		mp.pageInfo(firstPFN + i).MarkDMAMapped(dir.Perm().Allows(true))
		m.pages = append(m.pages, firstPFN+i)
	}
	mp.active[mapKey{dev, base}] = m
	mp.stats.MapSingles++
	mp.stats.PagesMapped += uint64(len(m.pages))
	for _, h := range mp.hooks {
		h.OnMap(dev, kva, n, dir, base+iommu.IOVA(offset))
	}
	return base + iommu.IOVA(offset), nil
}

// UnmapSingle is dma_unmap_single: it takes the IOVA MapSingle returned plus
// the original length and direction. After it returns, the *page table* no
// longer maps the range; whether the *device* has lost access depends on the
// IOMMU invalidation mode and on other mappings of the same frames.
func (mp *Mapper) UnmapSingle(dev iommu.DeviceID, va iommu.IOVA, n uint64, dir Direction) error {
	base := va &^ iommu.IOVA(layout.PageMask)
	k := mapKey{dev, base}
	m, ok := mp.active[k]
	if !ok {
		return fmt.Errorf("dma: unmap of unknown mapping (dev %d, IOVA %#x)", dev, uint64(va))
	}
	if m.n != n || m.dir != dir {
		return fmt.Errorf("dma: unmap arguments (len %d, %v) do not match mapping (len %d, %v)", n, dir, m.n, m.dir)
	}
	for i, pfn := range m.pages {
		v := base + iommu.IOVA(uint64(i)*layout.PageSize)
		if err := mp.unit.Unmap(dev, v); err != nil {
			return err
		}
		mp.pageInfo(pfn).ClearDMAMapped()
	}
	delete(mp.active, k)
	if err := mp.unit.ReleaseIOVA(dev, base, uint64(len(m.pages))*layout.PageSize); err != nil {
		return err
	}
	mp.stats.Unmaps++
	for _, h := range mp.hooks {
		h.OnUnmap(dev, m.kva, m.n, m.dir, va)
	}
	return nil
}

// MapPage is dma_map_page: maps n bytes at the given offset of a frame.
func (mp *Mapper) MapPage(dev iommu.DeviceID, pfn layout.PFN, offset, n uint64, dir Direction) (iommu.IOVA, error) {
	if offset >= layout.PageSize {
		return 0, fmt.Errorf("dma: page offset %d out of range", offset)
	}
	kva := mp.mem.Layout().PFNToKVA(pfn) + layout.Addr(offset)
	return mp.MapSingle(dev, kva, n, dir)
}

// pageInfo panics only on internal inconsistency (PFNs come from layout).
func (mp *Mapper) pageInfo(p layout.PFN) *mem.PageInfo {
	pi, err := mp.mem.Page(p)
	if err != nil {
		panic(fmt.Sprintf("dma: internal: %v", err))
	}
	return pi
}

// DomainOf exposes the IOMMU domain a device is attached to.
func (mp *Mapper) DomainOf(dev iommu.DeviceID) (*iommu.Domain, error) {
	return mp.unit.DomainOf(dev)
}

// Live returns the number of active mappings (all devices).
func (mp *Mapper) Live() int { return len(mp.active) }

// MappingAt reports the live mapping covering the IOVA, for tests.
func (mp *Mapper) MappingAt(dev iommu.DeviceID, va iommu.IOVA) (kva layout.Addr, n uint64, dir Direction, ok bool) {
	m, found := mp.active[mapKey{dev, va &^ iommu.IOVA(layout.PageMask)}]
	if !found {
		return 0, 0, 0, false
	}
	return m.kva, m.n, m.dir, true
}
