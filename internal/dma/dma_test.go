package dma

import (
	"strings"
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
	"dmafault/internal/sim"
)

const nic iommu.DeviceID = 1

type world struct {
	mem  *mem.Memory
	unit *iommu.IOMMU
	mp   *Mapper
	bus  *Bus
	clk  *sim.Clock
	dom  *iommu.Domain
}

func newWorld(t *testing.T, mode iommu.Mode) *world {
	t.Helper()
	l := layout.New(layout.Config{KASLR: true, Seed: 5, PhysBytes: 32 << 20})
	m, err := mem.New(mem.Config{Layout: l, CPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock()
	u := iommu.New(mode, clk)
	dom, err := u.CreateDomain("nic", nic)
	if err != nil {
		t.Fatal(err)
	}
	return &world{mem: m, unit: u, mp: NewMapper(m, u), bus: NewBus(m, u), clk: clk, dom: dom}
}

func TestDirectionPerms(t *testing.T) {
	if ToDevice.Perm() != iommu.PermRead || FromDevice.Perm() != iommu.PermWrite || Bidirectional.Perm() != iommu.PermBidir {
		t.Error("direction -> permission mapping wrong")
	}
	for _, d := range []Direction{ToDevice, FromDevice, Bidirectional} {
		if !strings.HasPrefix(d.String(), "DMA_") {
			t.Errorf("String() = %q", d)
		}
	}
}

func TestMapSingleRoundTrip(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	kva, err := w.mem.Slab.Kmalloc(0, 1500, "rx_buf")
	if err != nil {
		t.Fatal(err)
	}
	va, err := w.mp.MapSingle(nic, kva, 1500, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// The low 12 bits of the IOVA equal those of the KVA (§5.2.2 fn. 5).
	if uint64(va)&layout.PageMask != uint64(kva)&layout.PageMask {
		t.Errorf("IOVA offset %#x != KVA offset %#x", uint64(va)&layout.PageMask, uint64(kva)&layout.PageMask)
	}
	// Device writes land in kernel memory.
	payload := []byte("packet data")
	if err := w.bus.Write(nic, va, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := w.mem.Read(kva, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Errorf("device write not visible to CPU: %q", got)
	}
	// FromDevice mapping does not allow device reads.
	if err := w.bus.Read(nic, va, got); err == nil {
		t.Error("device read allowed through WRITE-only mapping")
	}
	if w.mp.Live() != 1 {
		t.Errorf("Live = %d", w.mp.Live())
	}
	if err := w.mp.UnmapSingle(nic, va, 1500, FromDevice); err != nil {
		t.Fatal(err)
	}
	if w.mp.Live() != 0 {
		t.Errorf("Live = %d after unmap", w.mp.Live())
	}
	if err := w.bus.Write(nic, va, payload); err == nil {
		t.Error("device write allowed after strict unmap")
	}
}

func TestWholePageExposure(t *testing.T) {
	// The heart of the sub-page vulnerability: mapping 64 bytes exposes the
	// surrounding page, including a neighbouring kmalloc object.
	w := newWorld(t, iommu.Strict)
	a, _ := w.mem.Slab.Kmalloc(0, 64, "io_buf")
	b, _ := w.mem.Slab.Kmalloc(0, 64, "secret")
	if err := w.mem.WriteU64(b, 0x5ec23e7); err != nil {
		t.Fatal(err)
	}
	va, err := w.mp.MapSingle(nic, a, 64, Bidirectional)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := w.mem.Layout().KVAToPFN(a)
	pb, _ := w.mem.Layout().KVAToPFN(b)
	if pa != pb {
		t.Skip("allocator placed objects on different pages (unexpected for fresh slab)")
	}
	// Device reads the secret through the mapping of the *other* object.
	secretIOVA := va + iommu.IOVA(b-a)
	got, err := w.bus.ReadU64(nic, secretIOVA)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5ec23e7 {
		t.Errorf("leaked secret = %#x", got)
	}
	if err := w.mp.UnmapSingle(nic, va, 64, Bidirectional); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageMapping(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	// A 3-page span from the page allocator.
	pfn, err := w.mem.Pages.AllocPages(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	kva := w.mem.Layout().PFNToKVA(pfn) + 100
	n := uint64(2*layout.PageSize + 500)
	va, err := w.mp.MapSingle(nic, kva, n, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := w.bus.Write(nic, va, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if err := w.mem.Read(kva, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
	// All three pages are marked mapped.
	for i := layout.PFN(0); i < 3; i++ {
		pi, _ := w.mem.Page(pfn + i)
		if !pi.DMAMapped() || !pi.DMAWritable {
			t.Errorf("page %d not marked mapped/writable", i)
		}
	}
	if err := w.mp.UnmapSingle(nic, va, n, FromDevice); err != nil {
		t.Fatal(err)
	}
	for i := layout.PFN(0); i < 3; i++ {
		pi, _ := w.mem.Page(pfn + i)
		if pi.DMAMapped() {
			t.Errorf("page %d still marked after unmap", i)
		}
	}
}

func TestMapErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "t")
	if _, err := w.mp.MapSingle(nic, kva, 0, ToDevice); err == nil {
		t.Error("zero-length map accepted")
	}
	if _, err := w.mp.MapSingle(nic, layout.VmallocStart, 64, ToDevice); err == nil {
		t.Error("non-direct-map KVA accepted")
	}
	if _, err := w.mp.MapSingle(iommu.DeviceID(9), kva, 64, ToDevice); err == nil {
		t.Error("unattached device accepted")
	}
	end := w.mem.Layout().PFNToKVA(layout.PFN(w.mem.NumPages()-1)) + layout.PageSize - 8
	if _, err := w.mp.MapSingle(nic, end, 64, ToDevice); err == nil {
		t.Error("map straddling end of memory accepted")
	}
}

func TestUnmapErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "t")
	va, err := w.mp.MapSingle(nic, kva, 64, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mp.UnmapSingle(nic, va, 128, ToDevice); err == nil {
		t.Error("unmap with wrong length accepted")
	}
	if err := w.mp.UnmapSingle(nic, va, 64, FromDevice); err == nil {
		t.Error("unmap with wrong direction accepted")
	}
	if err := w.mp.UnmapSingle(nic, va+iommu.IOVA(layout.PageSize), 64, ToDevice); err == nil {
		t.Error("unmap of unknown IOVA accepted")
	}
	if err := w.mp.UnmapSingle(nic, va, 64, ToDevice); err != nil {
		t.Fatal(err)
	}
	if err := w.mp.UnmapSingle(nic, va, 64, ToDevice); err == nil {
		t.Error("double unmap accepted")
	}
}

func TestMapPage(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	pfn, _ := w.mem.Pages.AllocPages(0, 0)
	va, err := w.mp.MapPage(nic, pfn, 128, 256, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	kva, n, dir, ok := w.mp.MappingAt(nic, va)
	if !ok || kva != w.mem.Layout().PFNToKVA(pfn)+128 || n != 256 || dir != ToDevice {
		t.Errorf("MappingAt = %#x, %d, %v, %v", uint64(kva), n, dir, ok)
	}
	if _, err := w.mp.MapPage(nic, pfn, layout.PageSize, 1, ToDevice); err == nil {
		t.Error("offset beyond page accepted")
	}
	if err := w.mp.UnmapSingle(nic, va, 256, ToDevice); err != nil {
		t.Fatal(err)
	}
}

func TestTypeCDoubleMappingOfPage(t *testing.T) {
	// Two buffers on one page mapped separately: the page stays device-
	// accessible until BOTH are unmapped — type (c).
	w := newWorld(t, iommu.Strict)
	a, err := w.mem.Frag.Alloc(0, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.mem.Frag.Alloc(0, 2048, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := w.mem.Layout().KVAToPFN(a)
	pb, _ := w.mem.Layout().KVAToPFN(b)
	if pa != pb {
		// Carve until a shared page shows up (deterministic: 2 KiB halves).
		a, b = b, a
		pa = pb
	}
	va, err := w.mp.MapSingle(nic, a, 2048, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := w.mp.MapSingle(nic, b, 2048, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := w.mem.Page(pa)
	if pi.DMAMapCount < 1 {
		t.Error("page not marked mapped")
	}
	iovas := w.dom.IOVAsFor(pa)
	if len(iovas) < 1 {
		t.Errorf("IOVAsFor = %v", iovas)
	}
	if err := w.mp.UnmapSingle(nic, va, 2048, FromDevice); err != nil {
		t.Fatal(err)
	}
	// Page remains device-writable through the second mapping if the two
	// buffers share a frame.
	if pa == pb {
		if !pi.DMAMapped() {
			t.Error("page lost mapped state while second mapping lives")
		}
	}
	if err := w.mp.UnmapSingle(nic, vb, 2048, FromDevice); err != nil {
		t.Fatal(err)
	}
}

func TestSGMapUnmap(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	var segs []Segment
	for i := 0; i < 3; i++ {
		kva, err := w.mem.Slab.Kmalloc(0, 1024, "sg")
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, Segment{KVA: kva, Len: 1024})
	}
	sg, err := w.mp.MapSG(nic, segs, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if len(sg.IOVAs) != 3 {
		t.Fatalf("IOVAs = %d", len(sg.IOVAs))
	}
	if w.mp.Live() != 3 {
		t.Errorf("Live = %d", w.mp.Live())
	}
	// Fill segment 1 via CPU, read via device.
	if err := w.mem.WriteU64(segs[1].KVA, 42); err != nil {
		t.Fatal(err)
	}
	v, err := w.bus.ReadU64(nic, sg.IOVAs[1])
	if err != nil || v != 42 {
		t.Fatalf("sg read = %d, %v", v, err)
	}
	if err := w.mp.UnmapSG(sg); err != nil {
		t.Fatal(err)
	}
	if w.mp.Live() != 0 {
		t.Errorf("Live = %d after UnmapSG", w.mp.Live())
	}
	if _, err := w.mp.MapSG(nic, nil, ToDevice); err == nil {
		t.Error("empty sg list accepted")
	}
}

func TestSGMapRollsBackOnFailure(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	good, _ := w.mem.Slab.Kmalloc(0, 512, "ok")
	segs := []Segment{{KVA: good, Len: 512}, {KVA: layout.VmallocStart, Len: 64}}
	if _, err := w.mp.MapSG(nic, segs, ToDevice); err == nil {
		t.Fatal("bad sg list accepted")
	}
	if w.mp.Live() != 0 {
		t.Errorf("rollback incomplete: Live = %d", w.mp.Live())
	}
}

type countingHook struct{ maps, unmaps int }

func (c *countingHook) OnMap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction, va iommu.IOVA) {
	c.maps++
}
func (c *countingHook) OnUnmap(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction, va iommu.IOVA) {
	c.unmaps++
}

func TestHooksFire(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	h := &countingHook{}
	w.mp.AddHook(h)
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "t")
	va, err := w.mp.MapSingle(nic, kva, 64, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.mp.UnmapSingle(nic, va, 64, ToDevice); err != nil {
		t.Fatal(err)
	}
	if h.maps != 1 || h.unmaps != 1 {
		t.Errorf("hook counts: %d maps, %d unmaps", h.maps, h.unmaps)
	}
	st := w.mp.Stats()
	if st.MapSingles != 1 || st.Unmaps != 1 || st.PagesMapped != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestDeferredWindowThroughBus(t *testing.T) {
	// End-to-end Fig. 6: device keeps writing after dma_unmap in deferred
	// mode, until the flush timer fires.
	w := newWorld(t, iommu.Deferred)
	kva, _ := w.mem.Slab.Kmalloc(0, 2048, "rx")
	va, err := w.mp.MapSingle(nic, kva, 2048, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.bus.Write(nic, va, []byte{1}); err != nil { // prime IOTLB
		t.Fatal(err)
	}
	if err := w.mp.UnmapSingle(nic, va, 2048, FromDevice); err != nil {
		t.Fatal(err)
	}
	if err := w.bus.Write(nic, va, []byte{2}); err != nil {
		t.Fatalf("stale write blocked during deferred window: %v", err)
	}
	w.clk.Advance(iommu.DeferredTimeout + 1)
	if err := w.bus.Write(nic, va, []byte{3}); err == nil {
		t.Error("stale write allowed after deferred flush")
	}
	var b [1]byte
	if err := w.mem.Read(kva, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 2 {
		t.Errorf("memory byte = %d, want 2 (last successful stale write)", b[0])
	}
}

func TestBusProbe(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "t")
	va, err := w.mp.MapSingle(nic, kva, 64, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if !w.bus.Probe(nic, va, false) {
		t.Error("probe read failed on READ mapping")
	}
	if w.bus.Probe(nic, va, true) {
		t.Error("probe write succeeded on READ mapping")
	}
	if err := w.mp.UnmapSingle(nic, va, 64, ToDevice); err != nil {
		t.Fatal(err)
	}
}
