package dma

import (
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// BouncePool is the production shape of the [47] defense: instead of
// mapping/unmapping a fresh shadow per I/O (BounceMapper), the pool
// pre-allocates dedicated pages and maps them ONCE, statically. Per I/O,
// only copies happen:
//
//   - no per-I/O IOMMU page-table updates, no invalidations — the deferred-
//     invalidation dilemma (§5.2.1) disappears because nothing is ever
//     unmapped;
//   - the device can only ever reach pool pages, which hold nothing but
//     in-flight I/O bytes;
//   - slots are zeroed on release so one I/O cannot leak into the next
//     (cross-I/O leakage is the residual risk of static mappings).
//
// The cost is the copy per direction plus the pool's pinned memory — the
// trade the paper's §8 discussion attributes to Markuze et al.
type BouncePool struct {
	m      *mem.Memory
	mapper *Mapper
	dev    iommu.DeviceID

	slotSize uint64
	slots    []poolSlot
	free     []int
	byIOVA   map[iommu.IOVA]int
	stats    BouncePoolStats
}

type poolSlot struct {
	kva  layout.Addr
	iova iommu.IOVA
	pfn  layout.PFN
	// inUse tracks the caller's buffer for the copy-back.
	origKVA layout.Addr
	n       uint64
	dir     Direction
}

// BouncePoolStats counts pool activity.
type BouncePoolStats struct {
	Maps, Unmaps, BytesCopied uint64
	Exhaustions               uint64
}

// NewBouncePool allocates and statically maps `slots` page-sized shadow
// slots for the device.
func NewBouncePool(m *mem.Memory, mapper *Mapper, dev iommu.DeviceID, slots int) (*BouncePool, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("dma: bounce pool needs at least one slot")
	}
	p := &BouncePool{
		m: m, mapper: mapper, dev: dev,
		slotSize: layout.PageSize,
		byIOVA:   make(map[iommu.IOVA]int, slots),
	}
	for i := 0; i < slots; i++ {
		pfn, err := m.Pages.AllocPages(0, 0)
		if err != nil {
			return nil, err
		}
		kva := m.Layout().PFNToKVA(pfn)
		va, err := mapper.MapSingle(dev, kva, layout.PageSize, Bidirectional)
		if err != nil {
			return nil, err
		}
		p.slots = append(p.slots, poolSlot{kva: kva, iova: va, pfn: pfn})
		p.free = append(p.free, i)
		p.byIOVA[va] = i
	}
	return p, nil
}

// Stats returns a copy of the counters.
func (p *BouncePool) Stats() BouncePoolStats { return p.stats }

// FreeSlots returns the number of available slots.
func (p *BouncePool) FreeSlots() int { return len(p.free) }

// Map stages an I/O: it claims a slot, copies outbound bytes in, and returns
// the slot's (static) IOVA. No IOMMU state changes.
func (p *BouncePool) Map(kva layout.Addr, n uint64, dir Direction) (iommu.IOVA, error) {
	if n == 0 || n > p.slotSize {
		return 0, fmt.Errorf("dma: bounce pool mapping of %d bytes (slot %d)", n, p.slotSize)
	}
	if len(p.free) == 0 {
		p.stats.Exhaustions++
		return 0, fmt.Errorf("dma: bounce pool exhausted")
	}
	idx := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	s := &p.slots[idx]
	s.origKVA, s.n, s.dir = kva, n, dir
	if dir == ToDevice || dir == Bidirectional {
		buf := make([]byte, n)
		if err := p.m.Read(kva, buf); err != nil {
			return 0, err
		}
		if err := p.m.Write(s.kva, buf); err != nil {
			return 0, err
		}
		p.stats.BytesCopied += n
	}
	p.stats.Maps++
	return s.iova, nil
}

// Unmap completes an I/O: inbound bytes are copied back (the n requested
// bytes only), the slot is zeroed and released. Again no IOMMU changes — and
// therefore no invalidation window to exploit.
func (p *BouncePool) Unmap(va iommu.IOVA, n uint64, dir Direction) error {
	idx, ok := p.byIOVA[va]
	if !ok {
		return fmt.Errorf("dma: bounce pool unmap of unknown IOVA %#x", uint64(va))
	}
	s := &p.slots[idx]
	if s.origKVA == 0 {
		return fmt.Errorf("dma: bounce pool slot %d not in use", idx)
	}
	if s.n != n || s.dir != dir {
		return fmt.Errorf("dma: bounce pool unmap arguments mismatch")
	}
	if dir == FromDevice || dir == Bidirectional {
		buf := make([]byte, n)
		if err := p.m.Read(s.kva, buf); err != nil {
			return err
		}
		if err := p.m.Write(s.origKVA, buf); err != nil {
			return err
		}
		p.stats.BytesCopied += n
	}
	// Zero the slot: the next I/O (and the device, meanwhile) sees nothing
	// of this one.
	if err := p.m.Memset(s.kva, 0, p.slotSize); err != nil {
		return err
	}
	s.origKVA, s.n, s.dir = 0, 0, ToDevice
	p.free = append(p.free, idx)
	p.stats.Unmaps++
	return nil
}

// Close tears the pool down (unmaps and frees every slot).
func (p *BouncePool) Close() error {
	for i := range p.slots {
		s := &p.slots[i]
		if err := p.mapper.UnmapSingle(p.dev, s.iova, layout.PageSize, Bidirectional); err != nil {
			return err
		}
		if err := p.m.Pages.Free(0, s.pfn, 0); err != nil {
			return err
		}
	}
	p.slots, p.free = nil, nil
	p.byIOVA = map[iommu.IOVA]int{}
	return nil
}
