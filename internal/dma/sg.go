package dma

import (
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
)

// Segment is one element of a scatter/gather list (struct scatterlist).
type Segment struct {
	KVA layout.Addr
	Len uint64
}

// SGMapping is the result of MapSG: per-segment IOVAs plus the bookkeeping
// UnmapSG needs. It models the "analogous methods to map and unmap for
// non-contiguous scatter/gather lists" of §2.3.
type SGMapping struct {
	dev   iommu.DeviceID
	dir   Direction
	Segs  []Segment
	IOVAs []iommu.IOVA
}

// MapSG maps every segment of the list and returns the aggregate mapping.
// On failure, segments already mapped are rolled back.
func (mp *Mapper) MapSG(dev iommu.DeviceID, segs []Segment, dir Direction) (*SGMapping, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("dma: empty scatter/gather list")
	}
	sg := &SGMapping{dev: dev, dir: dir, Segs: append([]Segment(nil), segs...)}
	for i, s := range segs {
		va, err := mp.MapSingle(dev, s.KVA, s.Len, dir)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = mp.UnmapSingle(dev, sg.IOVAs[j], segs[j].Len, dir)
			}
			return nil, fmt.Errorf("dma: sg segment %d: %w", i, err)
		}
		sg.IOVAs = append(sg.IOVAs, va)
	}
	mp.stats.SGMaps++
	return sg, nil
}

// UnmapSG releases every segment of the list.
func (mp *Mapper) UnmapSG(sg *SGMapping) error {
	var firstErr error
	for i, va := range sg.IOVAs {
		if err := mp.UnmapSingle(sg.dev, va, sg.Segs[i].Len, sg.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
