package dma

import (
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// BounceMapper is the copy-based IOMMU protection of Markuze et al. [47]
// (discussed in §8): instead of mapping the caller's buffer, every dma_map
// copies the requested bytes into a dedicated shadow page (or pages) that
// contains nothing else, maps the shadow, and copies device writes back on
// unmap — only the n requested bytes, never the rest of the page.
//
// This removes both halves of the sub-page problem at the price of copies:
// no co-location (the shadow page holds one buffer), and no useful stale
// window (what the device scribbles outside the requested bytes is never
// copied back).
type BounceMapper struct {
	mem   *mem.Memory
	inner *Mapper
	// shadows tracks live bounce mappings by their page-aligned IOVA.
	shadows map[mapKey]*bounce
	stats   BounceStats
}

// BounceStats counts bounce activity.
type BounceStats struct {
	Maps, Unmaps, BytesCopied uint64
}

type bounce struct {
	origKVA   layout.Addr
	shadowKVA layout.Addr
	n         uint64
	dir       Direction
	order     uint
	pfn       layout.PFN
}

// NewBounceMapper wraps a Mapper with bounce buffering.
func NewBounceMapper(m *mem.Memory, inner *Mapper) *BounceMapper {
	return &BounceMapper{mem: m, inner: inner, shadows: make(map[mapKey]*bounce)}
}

// Stats returns a copy of the counters.
func (b *BounceMapper) Stats() BounceStats { return b.stats }

// MapSingle copies the buffer into a fresh shadow allocation and maps that.
func (b *BounceMapper) MapSingle(dev iommu.DeviceID, kva layout.Addr, n uint64, dir Direction) (iommu.IOVA, error) {
	if n == 0 {
		return 0, fmt.Errorf("dma: zero-length bounce mapping")
	}
	order := uint(0)
	for (uint64(layout.PageSize) << order) < n {
		order++
	}
	pfn, err := b.mem.Pages.AllocPages(0, order)
	if err != nil {
		return 0, err
	}
	shadow := b.mem.Layout().PFNToKVA(pfn)
	// Copy the caller's bytes in for device-readable directions.
	if dir == ToDevice || dir == Bidirectional {
		buf := make([]byte, n)
		if err := b.mem.Read(kva, buf); err != nil {
			return 0, err
		}
		if err := b.mem.Write(shadow, buf); err != nil {
			return 0, err
		}
		b.stats.BytesCopied += n
	}
	va, err := b.inner.MapSingle(dev, shadow, n, dir)
	if err != nil {
		_ = b.mem.Pages.Free(0, pfn, order)
		return 0, err
	}
	b.shadows[mapKey{dev, va &^ iommu.IOVA(layout.PageMask)}] = &bounce{
		origKVA: kva, shadowKVA: shadow, n: n, dir: dir, order: order, pfn: pfn,
	}
	b.stats.Maps++
	return va, nil
}

// UnmapSingle copies device writes back (the n requested bytes only) and
// releases the shadow.
func (b *BounceMapper) UnmapSingle(dev iommu.DeviceID, va iommu.IOVA, n uint64, dir Direction) error {
	k := mapKey{dev, va &^ iommu.IOVA(layout.PageMask)}
	sh, ok := b.shadows[k]
	if !ok {
		return fmt.Errorf("dma: bounce unmap of unknown mapping %#x", uint64(va))
	}
	if sh.n != n || sh.dir != dir {
		return fmt.Errorf("dma: bounce unmap arguments mismatch")
	}
	if err := b.inner.UnmapSingle(dev, va, n, dir); err != nil {
		return err
	}
	if dir == FromDevice || dir == Bidirectional {
		buf := make([]byte, n)
		if err := b.mem.Read(sh.shadowKVA, buf); err != nil {
			return err
		}
		if err := b.mem.Write(sh.origKVA, buf); err != nil {
			return err
		}
		b.stats.BytesCopied += n
	}
	delete(b.shadows, k)
	b.stats.Unmaps++
	return b.mem.Pages.Free(0, sh.pfn, sh.order)
}

// Live returns the number of active bounce mappings.
func (b *BounceMapper) Live() int { return len(b.shadows) }
