package dma

import (
	"encoding/binary"
	"fmt"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/mem"
)

// Bus is the device-side view of memory: every access is an IOVA that the
// IOMMU translates (or faults). Devices — benign NIC data paths and the
// malicious device framework alike — touch memory only through a Bus.
type Bus struct {
	mem  *mem.Memory
	unit *iommu.IOMMU
	// OnAccess, if set, observes every device access attempt (tracing).
	OnAccess func(dev iommu.DeviceID, va iommu.IOVA, n int, write bool, err error)
	// Inject, if set, is the fault-injection hook consulted before every
	// device write: it may drop the write (a lost posted write — the bus
	// reports success, as real hardware would) or corrupt the payload.
	// internal/faultinject implements it.
	Inject WriteInjector
}

// WriteInjector is the device-write fault-injection hook. It receives a
// private copy of the payload, so corrupting buf in place never mutates the
// caller's memory.
type WriteInjector interface {
	InjectDeviceWrite(dev iommu.DeviceID, va iommu.IOVA, buf []byte) (drop bool)
}

// NewBus builds the device access path.
func NewBus(m *mem.Memory, u *iommu.IOMMU) *Bus {
	return &Bus{mem: m, unit: u}
}

// Read performs a device DMA read of len(buf) bytes starting at the IOVA,
// page by page through the IOMMU.
func (b *Bus) Read(dev iommu.DeviceID, va iommu.IOVA, buf []byte) error {
	return b.access(dev, va, buf, false)
}

// Write performs a device DMA write of len(buf) bytes starting at the IOVA.
func (b *Bus) Write(dev iommu.DeviceID, va iommu.IOVA, buf []byte) error {
	return b.access(dev, va, buf, true)
}

func (b *Bus) access(dev iommu.DeviceID, va iommu.IOVA, buf []byte, write bool) (err error) {
	if b.OnAccess != nil {
		defer func() { b.OnAccess(dev, va, len(buf), write, err) }()
	}
	if write && b.Inject != nil {
		owned := append([]byte(nil), buf...)
		if b.Inject.InjectDeviceWrite(dev, va, owned) {
			return nil // posted write silently lost
		}
		buf = owned
	}
	done := uint64(0)
	n := uint64(len(buf))
	for done < n {
		cur := va + iommu.IOVA(done)
		pfn, err := b.unit.Translate(dev, cur, write)
		if err != nil {
			return fmt.Errorf("dma: device access at +%d: %w", done, err)
		}
		off := uint64(cur) & layout.PageMask
		chunk := layout.PageSize - off
		if chunk > n-done {
			chunk = n - done
		}
		pa := uint64(pfn)*layout.PageSize + off
		if write {
			err = b.mem.WritePhys(pa, buf[done:done+chunk])
		} else {
			err = b.mem.ReadPhys(pa, buf[done:done+chunk])
		}
		if err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// ReadU64 reads one little-endian word by DMA.
func (b *Bus) ReadU64(dev iommu.DeviceID, va iommu.IOVA) (uint64, error) {
	var buf [8]byte
	if err := b.Read(dev, va, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteU64 writes one little-endian word by DMA.
func (b *Bus) WriteU64(dev iommu.DeviceID, va iommu.IOVA, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return b.Write(dev, va, buf[:])
}

// Probe reports whether the device can currently access the IOVA page.
func (b *Bus) Probe(dev iommu.DeviceID, va iommu.IOVA, write bool) bool {
	_, err := b.unit.Translate(dev, va, write)
	return err == nil
}
