package dma

import (
	"bytes"
	"testing"

	"dmafault/internal/iommu"
	"dmafault/internal/layout"
)

func TestBounceRoundTrip(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	bm := NewBounceMapper(w.mem, w.mp)
	kva, _ := w.mem.Slab.Kmalloc(0, 256, "tx_buf")
	payload := []byte("outbound payload")
	if err := w.mem.Write(kva, payload); err != nil {
		t.Fatal(err)
	}
	va, err := bm.MapSingle(nic, kva, 256, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	// The device reads the copy, not the original page.
	got := make([]byte, len(payload))
	if err := w.bus.Read(nic, va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("device read %q", got)
	}
	// The original page is NOT device-visible: the shadow occupies its own
	// fresh page.
	origPFN, _ := w.mem.Layout().KVAToPFN(kva)
	pi, _ := w.mem.Page(origPFN)
	if pi.DMAMapped() {
		t.Error("original page mapped despite bounce buffering")
	}
	if err := bm.UnmapSingle(nic, va, 256, ToDevice); err != nil {
		t.Fatal(err)
	}
	if bm.Live() != 0 {
		t.Errorf("Live = %d", bm.Live())
	}
	st := bm.Stats()
	if st.Maps != 1 || st.Unmaps != 1 || st.BytesCopied != 256 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBounceCopiesDeviceWritesBack(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	bm := NewBounceMapper(w.mem, w.mp)
	kva, _ := w.mem.Slab.Kmalloc(0, 128, "rx_buf")
	va, err := bm.MapSingle(nic, kva, 128, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.bus.Write(nic, va, []byte("inbound")); err != nil {
		t.Fatal(err)
	}
	// Not visible until unmap (ownership protocol).
	buf := make([]byte, 7)
	if err := w.mem.Read(kva, buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, []byte("inbound")) {
		t.Error("device write visible before unmap copy-back")
	}
	if err := bm.UnmapSingle(nic, va, 128, FromDevice); err != nil {
		t.Fatal(err)
	}
	if err := w.mem.Read(kva, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("inbound")) {
		t.Errorf("copy-back missing: %q", buf)
	}
}

func TestBounceBlocksOutOfRangeCorruption(t *testing.T) {
	// The defense's point: device writes beyond the n requested bytes (e.g.
	// skb_shared_info corruption at the tail of the page) are never copied
	// back.
	w := newWorld(t, iommu.Strict)
	bm := NewBounceMapper(w.mem, w.mp)
	pfn, _ := w.mem.Pages.AllocPages(0, 0)
	kva := w.mem.Layout().PFNToKVA(pfn)
	// A "shared info" word past the mapped length.
	if err := w.mem.WriteU64(kva+2048, 0x600d); err != nil {
		t.Fatal(err)
	}
	va, err := bm.MapSingle(nic, kva, 1500, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Device corrupts the whole shadow page (it can: page granularity).
	if err := w.bus.WriteU64(nic, (va&^iommu.IOVA(layout.PageMask))+2048, 0xbad); err != nil {
		t.Fatal(err)
	}
	if err := bm.UnmapSingle(nic, va, 1500, FromDevice); err != nil {
		t.Fatal(err)
	}
	got, _ := w.mem.ReadU64(kva + 2048)
	if got != 0x600d {
		t.Errorf("out-of-range device write leaked back: %#x", got)
	}
}

func TestBounceErrors(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	bm := NewBounceMapper(w.mem, w.mp)
	kva, _ := w.mem.Slab.Kmalloc(0, 64, "t")
	if _, err := bm.MapSingle(nic, kva, 0, ToDevice); err == nil {
		t.Error("zero-length bounce accepted")
	}
	va, err := bm.MapSingle(nic, kva, 64, ToDevice)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.UnmapSingle(nic, va, 32, ToDevice); err == nil {
		t.Error("mismatched unmap accepted")
	}
	if err := bm.UnmapSingle(nic, va+iommu.IOVA(layout.PageSize), 64, ToDevice); err == nil {
		t.Error("unknown unmap accepted")
	}
	if err := bm.UnmapSingle(nic, va, 64, ToDevice); err != nil {
		t.Fatal(err)
	}
}
