package dma

import (
	"testing"

	"dmafault/internal/iommu"
)

func TestSyncOwnershipStateMachine(t *testing.T) {
	w := newWorld(t, iommu.Strict)
	kva, _ := w.mem.Slab.Kmalloc(0, 512, "rx")
	va, err := w.mp.MapSingle(nic, kva, 512, FromDevice)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh mapping: device owns it.
	o, err := w.mp.OwnerOf(nic, va)
	if err != nil || o != OwnerDevice {
		t.Fatalf("owner = %v, %v", o, err)
	}
	if err := w.mp.SyncForDevice(nic, va); err == nil {
		t.Error("double sync_for_device accepted")
	}
	if err := w.mp.SyncForCPU(nic, va); err != nil {
		t.Fatal(err)
	}
	o, _ = w.mp.OwnerOf(nic, va)
	if o != OwnerCPU {
		t.Errorf("owner = %v after sync_for_cpu", o)
	}
	if err := w.mp.SyncForCPU(nic, va); err == nil {
		t.Error("double sync_for_cpu accepted")
	}
	if err := w.mp.SyncForDevice(nic, va); err != nil {
		t.Fatal(err)
	}
	if w.mp.Stats().Syncs != 2 {
		t.Errorf("Syncs = %d", w.mp.Stats().Syncs)
	}
	if err := w.mp.UnmapSingle(nic, va, 512, FromDevice); err != nil {
		t.Fatal(err)
	}
	if err := w.mp.SyncForCPU(nic, va); err == nil {
		t.Error("sync on unmapped IOVA accepted")
	}
	if _, err := w.mp.OwnerOf(nic, va); err == nil {
		t.Error("OwnerOf on unmapped IOVA accepted")
	}
}

func TestOwnerStrings(t *testing.T) {
	if OwnerCPU.String() != "cpu" || OwnerDevice.String() != "device" {
		t.Error("owner names wrong")
	}
}
