// Poisoned TX (§5.4): a malicious NIC coerces an echo service into copying
// its payload into TX frag pages, reads the pages' struct page pointers from
// the transmitted skb_shared_info, and turns them into the KVA it needs to
// finish the Fig. 4 code-injection.
package main

import (
	"fmt"
	"log"

	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func main() {
	// The victim: a server running an echo-style service (proxy, KV store,
	// streaming — §5.4 lists the usual suspects). IOMMU protection is on,
	// in the default deferred mode.
	sys, err := core.NewSystem(core.Config{Seed: 1337, KASLR: true, Mode: iommu.Deferred})
	if err != nil {
		log.Fatal(err)
	}
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		log.Fatal(err)
	}

	r := attacks.RunPoisonedTX(sys, nic)
	fmt.Print(r.String())
	fmt.Printf("\nkernel escalations observed: %d\n", sys.Kernel.Escalations)
	fmt.Println("note: works in strict mode too — the i40e unmap ordering provides the window (Fig. 7 path i)")
}
