// Memory dump: the §3.1 headline consequence, built from the §5.5
// surveillance primitive — a malicious NIC walks arbitrary physical pages by
// forging frags[] entries in forwarded packets, and reassembles kernel
// memory it was never given. No code injection, no crash, no trace.
package main

import (
	"fmt"
	"log"

	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
)

func main() {
	sys, err := core.NewSystem(core.Config{Seed: 4242, KASLR: true, Mode: iommu.Deferred, Forwarding: true})
	if err != nil {
		log.Fatal(err)
	}
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The victim kernel holds secrets across a few pages.
	base, err := sys.Mem.Pages.AllocPages(1, 2)
	if err != nil {
		log.Fatal(err)
	}
	secret := []byte("BEGIN RSA PRIVATE KEY ... (you get the idea) ... END RSA PRIVATE KEY")
	if err := sys.Mem.Write(sys.Layout.PFNToKVA(base)+100, secret); err != nil {
		log.Fatal(err)
	}

	r, dump := attacks.RunMemoryDump(sys, nic, base, 4)
	fmt.Print(r.String())
	if !r.Success {
		return
	}
	fmt.Printf("\nexfiltrated %d bytes; bytes 100..%d of page 0:\n  %q\n",
		len(dump), 100+len(secret), dump[100:100+len(secret)])
	fmt.Printf("kernel stability: %d frag release errors, %d escalations — the victim noticed nothing\n",
		sys.Net.Stats().FragReleaseErrors, sys.Kernel.Escalations)
}
