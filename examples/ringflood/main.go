// RingFlood (§5.3): profile the victim's boot determinism offline, then
// compromise a fresh boot by guessing where its RX ring landed.
package main

import (
	"fmt"
	"log"

	"dmafault/internal/attacks"
)

func main() {
	// Offline: the attacker owns an identical machine and reboots it,
	// recording which physical frames the NIC's RX ring lands on.
	const trials = 24
	study, err := attacks.RunBootStudy(attacks.Kernel415, trials, 9_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline profile over %d reboots (kernel 4.15, HW LRO):\n", trials)
	fmt.Printf("  ring footprint: %d pages\n", study.FootprintPages)
	fmt.Printf("  modal PFN %d repeats in %.0f%% of boots (buffer offset %d)\n\n",
		study.ModalPFN, study.ModalRate*100, study.ModalOffset)

	// Online: a victim machine boots with a seed the attacker never saw.
	sys, nic, _, err := attacks.BootOnce(attacks.Kernel415, 77_777, 0)
	if err != nil {
		log.Fatal(err)
	}
	r := attacks.RunRingFlood(sys, nic, study)
	fmt.Print(r.String())
	if r.Success {
		fmt.Println("kernel compromised: arbitrary code ran with kernel privileges")
	}
}
