// SPADE scan: run the static analyzer over the curated nvme_fc source and
// print the Fig. 2-style recursive trace, then summarize the full calibrated
// corpus (Table 2).
package main

import (
	"fmt"
	"log"

	"dmafault/internal/cminor"
	"dmafault/internal/corpus"
	"dmafault/internal/spade"
)

func main() {
	// Part 1: the Fig. 2 trace for the nvme_fc host driver.
	f, err := cminor.Parse("drivers/nvme/host/fc.c", corpus.NvmeFC)
	if err != nil {
		log.Fatal(err)
	}
	rep := spade.NewAnalyzer([]*cminor.File{f}).Run()
	fmt.Println("--- Figure 2: SPADE trace for drivers/nvme/host/fc.c ---")
	fmt.Print(rep.TraceFor("drivers/nvme/host/fc.c"))

	// Part 2: Table 2 over the Linux-5.0-calibrated corpus.
	var parsed []*cminor.File
	for _, sf := range corpus.Generate(corpus.Linux50) {
		pf, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			log.Fatal(err)
		}
		parsed = append(parsed, pf)
	}
	full := spade.NewAnalyzer(parsed).Run()
	fmt.Println("\n--- Table 2: SPADE results over the calibrated corpus ---")
	fmt.Print(full.Table())
}
