// Quickstart: boot a simulated machine, map a 64-byte buffer for a device,
// and watch the whole surrounding page leak — the sub-page vulnerability in
// one screen of code.
package main

import (
	"fmt"
	"log"

	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
)

func main() {
	// Boot: KASLR on, deferred IOTLB invalidation (the Linux default).
	sys, err := core.NewSystem(core.Config{Seed: 42, KASLR: true, Mode: iommu.Deferred})
	if err != nil {
		log.Fatal(err)
	}
	const nic iommu.DeviceID = 1
	if _, err := sys.IOMMU.CreateDomain("nic", nic); err != nil {
		log.Fatal(err)
	}

	// The driver kmallocs a 64-byte I/O buffer...
	ioBuf, err := sys.Mem.Slab.Kmalloc(0, 64, "driver_io_buf")
	if err != nil {
		log.Fatal(err)
	}
	// ...and, unrelatedly, the kernel keeps a secret in a same-class object.
	secret, err := sys.Mem.Slab.Kmalloc(0, 64, "session_key")
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Mem.Write(secret, []byte("hunter2-hunter2!")); err != nil {
		log.Fatal(err)
	}

	// dma_map_single maps 64 bytes — says the API. The IOMMU maps the page.
	va, err := sys.Mapper.MapSingle(nic, ioBuf, 64, dma.Bidirectional)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped 64 bytes at KVA %#x → IOVA %#x\n", uint64(ioBuf), uint64(va))

	// The device reads the *secret* through the I/O buffer's mapping: both
	// objects live on one 4 KiB page, and IOMMU protection stops at page
	// granularity.
	leak := make([]byte, 16)
	secretIOVA := va + iommu.IOVA(secret-ioBuf)
	if err := sys.Bus.Read(nic, secretIOVA, leak); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device read %q from a buffer it was never given\n", leak)

	// Unmap — and in deferred mode the device *still* has access for up to
	// 10 ms through its stale IOTLB entry.
	if err := sys.Mapper.UnmapSingle(nic, va, 64, dma.Bidirectional); err != nil {
		log.Fatal(err)
	}
	if err := sys.Bus.Read(nic, secretIOVA, leak); err == nil {
		fmt.Printf("after dma_unmap (deferred mode): device STILL reads %q\n", leak)
	}
	stats := sys.IOMMU.Stats()
	fmt.Printf("IOMMU stats: %d maps, %d unmaps, %d stale-entry hits\n",
		stats.Maps, stats.Unmaps, stats.StaleHits)
}
