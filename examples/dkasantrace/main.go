// D-KASAN trace: boot with the sanitizer attached, run the build+ping
// victim workload of §4.2, and print the Fig. 3-style exposure report.
package main

import (
	"fmt"
	"log"

	"dmafault/internal/core"
	"dmafault/internal/dkasan"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/workload"
)

func main() {
	dk := dkasan.New()
	sys, err := core.NewSystem(core.Config{Seed: 7, KASLR: true, Mode: iommu.Deferred, Tracer: dk})
	if err != nil {
		log.Fatal(err)
	}
	dk.Attach(sys.Mem, sys.Mapper)
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		log.Fatal(err)
	}
	res, err := workload.Run(sys, nic, workload.Config{Iterations: 16, NICDevice: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim workload: %d build rounds, %d pings (git clone + make + ping, §4.2)\n\n", res.Builds, res.Pings)
	fmt.Print(dk.Render())
	fmt.Println("\nevery line is a kernel object a DMA-capable device could read or corrupt")
}
