// Hardened: the same attacks against the mitigations the paper surveys —
// strict invalidation (insufficient), Intel CET (stops the ROP stage), and
// bounce buffers (stop sub-page exposure at a copy cost).
package main

import (
	"fmt"
	"log"

	"dmafault/internal/attacks"
	"dmafault/internal/core"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/layout"
	"dmafault/internal/netstack"
)

func boot(mode iommu.Mode, cet bool) (*core.System, *netstack.NIC) {
	sys, err := core.NewSystem(core.Config{Seed: 99, KASLR: true, Mode: mode})
	if err != nil {
		log.Fatal(err)
	}
	sys.Kernel.CETEnabled = cet
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		log.Fatal(err)
	}
	return sys, nic
}

func main() {
	// 1. Strict IOTLB invalidation: closes the deferred window (Fig. 6) but
	// not the driver-ordering one — the attack still lands.
	sys, nic := boot(iommu.Strict, false)
	r := attacks.RunPoisonedTX(sys, nic)
	fmt.Printf("strict mode:      Poisoned TX success=%v (Fig. 7 path (i) survives)\n", r.Success)

	// 2. Intel CET shadow stack (§8): the ROP chain's returns were never
	// calls, so the first return faults.
	sys2, nic2 := boot(iommu.Deferred, true)
	r2 := attacks.RunPoisonedTX(sys2, nic2)
	fmt.Printf("CET shadow stack: Poisoned TX success=%v (chain killed at first return)\n", r2.Success)

	// 3. Bounce buffers (Markuze et al. [47]): the device only ever sees
	// dedicated shadow pages; its out-of-range writes are never copied back.
	sys3, _ := boot(iommu.Deferred, false)
	bm := dma.NewBounceMapper(sys3.Mem, sys3.Mapper)
	pfn, err := sys3.Mem.Pages.AllocPages(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	kva := sys3.Layout.PFNToKVA(pfn)
	va, err := bm.MapSingle(1, kva, 1500, dma.FromDevice)
	if err != nil {
		log.Fatal(err)
	}
	// Device corrupts the tail of the shadow page ("shared info")...
	if err := sys3.Bus.WriteU64(1, (va&^iommu.IOVA(layout.PageMask))+2048, 0xbad); err != nil {
		log.Fatal(err)
	}
	if err := bm.UnmapSingle(1, va, 1500, dma.FromDevice); err != nil {
		log.Fatal(err)
	}
	tail, _ := sys3.Mem.ReadU64(kva + 2048)
	fmt.Printf("bounce buffers:   device tail-corruption reached kernel memory=%v (copy-back is length-bounded)\n", tail == 0xbad)
	fmt.Printf("                  copy cost: %d bytes moved for one RX buffer\n", bm.Stats().BytesCopied)

	fmt.Println("\nconclusion (§9): localized fixes block single-step attacks; the kernel's own")
	fmt.Println("APIs (build_skb, page_frag, skb_shared_info placement) keep compound attacks alive.")
}
