package dmafault

// Ablation benchmarks for the design decisions DESIGN.md calls out (D1–D5):
// each sweeps one knob and reports the security/performance trade-off as
// benchmark sub-results. Run with: go test -bench=Ablation -benchmem
//
// The printed custom metrics are the interesting output:
//   window_ms    — how long a device retains access after dma_unmap
//   ns_per_unmap — virtual-time invalidation cost amortized per operation
//   repeat_pct   — §5.3 PFN repeat probability
//   exposure     — type (c) co-location count

import (
	"fmt"
	"testing"

	"dmafault/internal/attacks"
	"dmafault/internal/cminor"
	"dmafault/internal/core"
	"dmafault/internal/corpus"
	"dmafault/internal/dma"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/sim"
	"dmafault/internal/spade"
)

// BenchmarkAblationD1FlushQueue sweeps the deferred flush-queue timeout: the
// window shrinks linearly with the timeout while the per-unmap cost rises as
// batches shrink.
func BenchmarkAblationD1FlushQueue(b *testing.B) {
	for _, timeoutMS := range []uint64{1, 2, 5, 10} {
		b.Run(fmt.Sprintf("timeout=%dms", timeoutMS), func(b *testing.B) {
			var window sim.Nanos
			var perOp sim.Nanos
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{Seed: 1, KASLR: true, Mode: iommu.Deferred})
				if err != nil {
					b.Fatal(err)
				}
				sys.IOMMU.SetFlushPolicy(sim.Nanos(timeoutMS)*sim.Millisecond, 0)
				if _, err := sys.IOMMU.CreateDomain("nic", 1); err != nil {
					b.Fatal(err)
				}
				buf, _ := sys.Mem.Slab.Kmalloc(0, 2048, "rx")
				va, err := sys.Mapper.MapSingle(1, buf, 2048, dma.FromDevice)
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Bus.Write(1, va, []byte{1}); err != nil {
					b.Fatal(err)
				}
				start := sys.Clock.Now()
				if err := sys.Mapper.UnmapSingle(1, va, 2048, dma.FromDevice); err != nil {
					b.Fatal(err)
				}
				for sys.Clock.Now()-start < 20*sim.Millisecond {
					if err := sys.Bus.Write(1, va, []byte{2}); err != nil {
						break
					}
					sys.Clock.Advance(50 * sim.Microsecond)
				}
				window = sys.Clock.Now() - start
				// Amortized cost over a burst.
				const ops = 512
				t0 := sys.Clock.Now()
				for j := 0; j < ops; j++ {
					v, err := sys.Mapper.MapSingle(1, buf, 2048, dma.FromDevice)
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Mapper.UnmapSingle(1, v, 2048, dma.FromDevice); err != nil {
						b.Fatal(err)
					}
					sys.Clock.Advance(10 * sim.Microsecond) // inter-packet gap drives timer flushes
				}
				perOp = (sys.Clock.Now() - t0) / ops
			}
			b.ReportMetric(float64(window)/float64(sim.Millisecond), "window_ms")
			b.ReportMetric(float64(perOp), "vns_per_op")
		})
	}
}

// BenchmarkAblationD2PageFrag compares the page_frag allocator against
// bounce buffering for RX-buffer provisioning: co-location exposure vs cost.
func BenchmarkAblationD2PageFrag(b *testing.B) {
	b.Run("page_frag", func(b *testing.B) {
		sys, _ := core.NewSystem(core.Config{Seed: 1, KASLR: true, Mode: iommu.Strict})
		if _, err := sys.IOMMU.CreateDomain("nic", 1); err != nil {
			b.Fatal(err)
		}
		shared := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a, err := sys.Mem.Frag.Alloc(0, 2048, 64)
			if err != nil {
				b.Fatal(err)
			}
			c, err := sys.Mem.Frag.Alloc(0, 2048, 64)
			if err != nil {
				b.Fatal(err)
			}
			p1, _ := sys.Layout.KVAToPFN(a)
			p2, _ := sys.Layout.KVAToPFN(c + 2047)
			if p1 == p2 {
				shared++
			}
			if err := sys.Mem.Frag.Free(0, a); err != nil {
				b.Fatal(err)
			}
			if err := sys.Mem.Frag.Free(0, c); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(shared)/float64(b.N), "exposure")
	})
	b.Run("bounce", func(b *testing.B) {
		sys, _ := core.NewSystem(core.Config{Seed: 1, KASLR: true, Mode: iommu.Strict})
		if _, err := sys.IOMMU.CreateDomain("nic", 1); err != nil {
			b.Fatal(err)
		}
		bm := dma.NewBounceMapper(sys.Mem, sys.Mapper)
		buf, _ := sys.Mem.Slab.Kmalloc(0, 2048, "rx")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			va, err := bm.MapSingle(1, buf, 2048, dma.FromDevice)
			if err != nil {
				b.Fatal(err)
			}
			if err := bm.UnmapSingle(1, va, 2048, dma.FromDevice); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(0, "exposure") // dedicated pages: no co-location by construction
	})
}

// BenchmarkAblationD3SharedInfo compares in-line vs out-of-line shared info:
// attack success flips, allocation cost rises slightly.
func BenchmarkAblationD3SharedInfo(b *testing.B) {
	for _, outOfLine := range []bool{false, true} {
		name := "inline"
		if outOfLine {
			name = "out-of-line"
		}
		b.Run(name, func(b *testing.B) {
			succ := 0
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(core.Config{Seed: 7, KASLR: true, Mode: iommu.Deferred, OutOfLineSharedInfo: outOfLine})
				if err != nil {
					b.Fatal(err)
				}
				nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
				if err != nil {
					b.Fatal(err)
				}
				if attacks.RunPoisonedTX(sys, nic).Success {
					succ++
				}
			}
			b.ReportMetric(float64(succ)/float64(b.N), "attack_success")
		})
	}
}

// BenchmarkAblationD4SpadeDepth sweeps SPADE's backtracking depth on the
// corpus: shallow analysis trades speed for false negatives.
func BenchmarkAblationD4SpadeDepth(b *testing.B) {
	var parsed []*cminor.File
	for _, sf := range corpus.Generate(corpus.Linux50) {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			b.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	for _, depth := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			var vulnerable int
			for i := 0; i < b.N; i++ {
				an := spade.NewAnalyzer(parsed)
				an.MaxDepth = depth
				vulnerable = an.Run().VulnerableCalls
			}
			b.ReportMetric(float64(vulnerable), "vulnerable_calls")
		})
	}
}

// BenchmarkAblationD5BootJitter sweeps the early-boot drift amplitude: the
// §5.3 repeat probability degrades as drift approaches and exceeds the
// driver footprint.
func BenchmarkAblationD5BootJitter(b *testing.B) {
	const trials = 12
	for _, jitter := range []int{64, 256, 512, 1024} {
		b.Run(fmt.Sprintf("jitter=%dpages", jitter), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				st, err := attacks.RunBootStudyJitter(attacks.Kernel50, trials, int64(5000+jitter), jitter)
				if err != nil {
					b.Fatal(err)
				}
				rate = st.ModalRate
			}
			b.ReportMetric(rate*100, "repeat_pct")
		})
	}
}
