module dmafault

go 1.22
