// Command fabrictop is a live terminal dashboard for a fabric coordinator
// running the fleet telemetry plane (campaign -coordinator -coordinator-addr
// ... -fleetobs). It follows the coordinator's SSE stream and redraws one
// screen per "fleet" event: per-worker lease load, per-phase latency totals,
// EWMA shard latency and throughput, cache hit rate, registry state
// (up/quarantined/stale), and campaign progress.
//
// When the SSE stream is unavailable (no -coordinator-addr hub, a proxy that
// buffers streams), fabrictop falls back to polling GET /v1/fleet on
// -interval. -once fetches a single snapshot, renders it without any screen
// control sequences, and exits — the scriptable form the smoke tests use.
//
// Usage:
//
//	fabrictop -coordinator http://127.0.0.1:9100          # live dashboard
//	fabrictop -coordinator http://127.0.0.1:9100 -once    # one snapshot
//	fabrictop -coordinator http://127.0.0.1:9100 -interval 2s
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:9100",
		"fabric coordinator base URL (its -coordinator-addr surface)")
	once := flag.Bool("once", false, "fetch one /v1/fleet snapshot, render it, exit")
	interval := flag.Duration("interval", time.Second, "poll cadence when the SSE stream is unavailable")
	flag.Parse()

	base := strings.TrimRight(*coordinator, "/")
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	if *once {
		fs, err := faultdclient.New(base).Fleet(ctx)
		if err != nil {
			fatal(err)
		}
		os.Stdout.WriteString(render(fs, false))
		return
	}

	// Live mode: prefer the SSE stream (one redraw per scrape round, no
	// polling drift); fall back to /v1/fleet polling if the stream cannot be
	// established or breaks.
	for ctx.Err() == nil {
		err := followSSE(ctx, base)
		if ctx.Err() != nil {
			break
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "fabrictop: stream unavailable (%v); polling %s/v1/fleet\n", err, base)
		}
		if pollErr := poll(ctx, base, *interval); pollErr != nil && ctx.Err() == nil {
			fatal(pollErr)
		}
	}
	os.Stdout.WriteString("\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fabrictop:", err)
	os.Exit(1)
}

// followSSE consumes the coordinator's event stream, redrawing on every
// "fleet" event and exiting cleanly on the terminal "status" event. Returns
// nil when the campaign ended, an error when the stream could not be used.
func followSSE(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/fabric/events", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("GET /v1/fabric/events: %d %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	sawFleet := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "fleet":
				var fs api.FleetSnapshot
				if err := json.Unmarshal([]byte(data), &fs); err != nil {
					continue // a torn event is not worth a redraw
				}
				sawFleet = true
				os.Stdout.WriteString(render(&fs, true))
			case "status":
				var st struct {
					Status string `json:"status"`
				}
				_ = json.Unmarshal([]byte(data), &st)
				fmt.Printf("\ncampaign %s\n", st.Status)
				os.Exit(0)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawFleet {
		return fmt.Errorf("stream carried no fleet events (coordinator running without -fleetobs?)")
	}
	return fmt.Errorf("stream ended")
}

// poll renders /v1/fleet on the interval until ctx ends — the degraded mode
// for coordinators without a hub.
func poll(ctx context.Context, base string, interval time.Duration) error {
	cl := faultdclient.New(base)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		fs, err := cl.Fleet(ctx)
		if err != nil {
			return err
		}
		os.Stdout.WriteString(render(fs, true))
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// render lays out one snapshot as a screen. With clear set it prefixes the
// ANSI clear-and-home sequence, turning repeated calls into a live redraw;
// without it the output is plain text (-once).
func render(fs *api.FleetSnapshot, clear bool) string {
	var b strings.Builder
	if clear {
		b.WriteString("\x1b[2J\x1b[H")
	}
	b.WriteString("FABRIC FLEET")
	if c := fs.Campaign; c != nil {
		fmt.Fprintf(&b, "   campaign %d/%d scenarios, %d/%d shards",
			c.ScenariosDone, c.ScenariosTotal, c.ShardsDone, c.ShardsTotal)
		if c.ScenariosTotal > 0 {
			fmt.Fprintf(&b, " (%.0f%%)", 100*float64(c.ScenariosDone)/float64(c.ScenariosTotal))
		}
	}
	b.WriteString("\n\n")
	fmt.Fprintf(&b, "%-28s %-6s %-6s %6s %7s %7s  %9s %9s %9s  %8s %9s %6s\n",
		"WORKER", "STATE", "LEASES", "SHARDS", "SCENES", "CACHE%",
		"QWAIT(s)", "EXEC(s)", "PUB(s)", "EWMA(s)", "SCEN/S", "READY")
	for _, w := range fs.Workers {
		cachePct := "-"
		if w.Scenarios > 0 {
			cachePct = fmt.Sprintf("%.0f%%", 100*float64(w.CacheHits)/float64(w.Scenarios))
		}
		fmt.Fprintf(&b, "%-28s %-6s %-6d %6d %7d %7s  %9.3f %9.3f %9.3f  %8.3f %9.1f %6s\n",
			trimURL(w.URL), state(w), w.Leases, w.Delivered, w.Scenarios, cachePct,
			w.PhaseTotals.QueueWait, w.PhaseTotals.Execute, w.PhaseTotals.Publish,
			w.EWMAShardSeconds, w.EWMAScenariosPerSec, ready(w))
	}
	if len(fs.Workers) == 0 {
		b.WriteString("(no workers registered)\n")
	}
	if fs.Metrics != nil {
		if v := fs.Metrics.Total("faultd_campaigns_completed_total"); v > 0 {
			fmt.Fprintf(&b, "\nfleet totals: %g campaigns completed, %g requests served\n",
				v, fs.Metrics.Total("faultd_requests_total"))
		}
	}
	return b.String()
}

// state condenses the registry flags into one word, worst condition first.
func state(w api.FleetWorker) string {
	switch {
	case w.Quarantined:
		return "QUAR"
	case !w.Up:
		return "down"
	default:
		return "up"
	}
}

// ready condenses the scrape-derived freshness flags.
func ready(w api.FleetWorker) string {
	switch {
	case w.Ready:
		return "yes"
	case w.Stale:
		return "stale"
	default:
		return "no"
	}
}

// trimURL drops the scheme so worker columns stay narrow.
func trimURL(u string) string {
	u = strings.TrimPrefix(u, "http://")
	return strings.TrimPrefix(u, "https://")
}
