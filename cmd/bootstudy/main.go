// Command bootstudy regenerates the §5.3 boot-determinism statistics: PFN
// repeat rates over simulated reboots, per kernel version (driver memory
// footprint), with an optional sweep over the early-boot drift amplitude
// (the D5 ablation).
//
// The study loops run on the campaign engine's worker pool (one worker per
// CPU by default; see internal/par) — statistics are seed-identical to the
// historical sequential runs at any worker count.
//
// Usage:
//
//	bootstudy                     # both kernels, 256 reboots each
//	bootstudy -trials 64          # faster
//	bootstudy -sweep              # jitter sweep: repeat rate vs drift
//	bootstudy -workers 1          # pin the pool (reboots stay seed-driven)
package main

import (
	"flag"
	"fmt"
	"runtime"

	"dmafault/internal/attacks"
	"dmafault/internal/cliutil"
)

func main() {
	trials := flag.Int("trials", 256, "reboots per configuration")
	sweep := flag.Bool("sweep", false, "sweep boot jitter amplitude (D5 ablation)")
	queues := flag.Bool("queues", false, "sweep RX queue count (larger machines, §5.3)")
	cf := cliutil.New("bootstudy").WithSeed().WithWorkers().WithLog()
	cf.Parse()
	log := cf.Logger(nil)
	log.Debug("boot study starting", "trials", *trials, "seed", *cf.Seed, "sweep", *sweep, "queues", *queues)
	if *cf.Workers > 0 {
		runtime.GOMAXPROCS(*cf.Workers)
	}

	if *sweep {
		runSweep(cf, *trials, *cf.Seed)
		return
	}
	if *queues {
		runQueueSweep(cf, *trials, *cf.Seed)
		return
	}
	fmt.Printf("%d simulated reboots per kernel (paper §5.3: 256 physical reboots)\n\n", *trials)
	fmt.Printf("%-28s %-16s %-12s %-12s %s\n", "kernel", "footprint", "modal PFN", "repeat", "median")
	for _, v := range []attacks.KernelVersion{attacks.Kernel50, attacks.Kernel415} {
		st, err := attacks.RunBootStudy(v, *trials, *cf.Seed)
		if err != nil {
			cf.Fatal(err)
		}
		fmt.Printf("%-28s %5d pages     %-12d %5.1f%%      %5.1f%%\n",
			label(v), st.FootprintPages, st.ModalPFN, st.ModalRate*100, st.MedianRate*100)
	}
	fmt.Println("\npaper: \"many PFNs repeat in more than 50% of reboots on kernel 5.0")
	fmt.Println("        and more than 95% on kernel 4.15\"")
}

func label(v attacks.KernelVersion) string {
	if v == attacks.Kernel415 {
		return "4.15 (HW LRO, 64 KiB bufs)"
	}
	return "5.0 (LRO off, 2 KiB bufs)"
}

func runSweep(cf *cliutil.Flags, trials int, seed int64) {
	fmt.Printf("repeat rate vs early-boot drift (%d reboots per point, kernel 5.0)\n\n", trials)
	fmt.Printf("%-16s %-12s %s\n", "jitter (pages)", "modal", "median")
	for _, jitter := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		st, err := attacks.RunBootStudyJitter(attacks.Kernel50, trials, seed+int64(jitter), jitter)
		if err != nil {
			cf.Fatal(err)
		}
		fmt.Printf("%-16d %5.1f%%      %5.1f%%\n", jitter, st.ModalRate*100, st.MedianRate*100)
	}
	fmt.Println("\nthe attack degrades as drift approaches the driver footprint —")
	fmt.Println("which is why HW LRO (26x footprint) makes RingFlood near-deterministic")
}

// runQueueSweep delegates to the pool-backed study (the hand-rolled
// aggregation loop this command used to carry now lives behind
// attacks.RunBootStudyQueues).
func runQueueSweep(cf *cliutil.Flags, trials int, seed int64) {
	if trials > 32 {
		trials = 32 // multi-queue boots are heavy
	}
	fmt.Printf("repeat rate vs RX queue count (%d reboots per point, kernel 5.0, heavy drift)\n\n", trials)
	fmt.Printf("%-10s %-14s %-10s\n", "queues", "footprint", "modal")
	for _, q := range []int{1, 2, 4, 8} {
		st, err := attacks.RunBootStudyQueues(attacks.Kernel50, trials, seed, 2048, q)
		if err != nil {
			cf.Fatal(err)
		}
		fmt.Printf("%-10d %5d pages    %5.1f%%\n", q, st.FootprintPages, st.ModalRate*100)
	}
	fmt.Println("\n§5.3: \"such attacks have a higher chance of success on larger machines\"")
}
