// Command attack executes the paper's DMA code-injection attacks against a
// freshly booted simulated machine and prints the step trace.
//
// Attacks: singlestep, ringflood, poisonedtx, forward, surveillance.
package main

import (
	"flag"
	"fmt"
	"os"

	"dmafault/internal/attacks"
	"dmafault/internal/cliutil"
	"dmafault/internal/core"
	"dmafault/internal/device"
	"dmafault/internal/iommu"
	"dmafault/internal/kexec"
	"dmafault/internal/netstack"
)

func main() {
	name := flag.String("attack", "poisonedtx", "singlestep | ringflood | poisonedtx | forward | surveillance | dos")
	trials := flag.Int("trials", 16, "offline boot-study trials (ringflood)")
	traceN := flag.Int("trace", 0, "print the last N machine events after the attack (0 = off)")
	cf := cliutil.New("attack").WithSeed().WithStrict().WithLog()
	cf.Parse()
	log := cf.Logger(nil)
	log.Debug("attack starting", "attack", *name, "seed", *cf.Seed, "mode", cf.Mode().String())

	r, err := run(*name, *cf.Seed, cf.Mode(), *trials, *traceN)
	if err != nil {
		cf.Fatal(err)
	}
	fmt.Print(r.String())
	if !r.Success {
		os.Exit(2)
	}
}

func run(name string, seed int64, mode iommu.Mode, trials, traceN int) (*attacks.Result, error) {
	switch name {
	case "ringflood":
		study, err := attacks.RunBootStudy(attacks.Kernel415, trials, seed)
		if err != nil {
			return nil, err
		}
		sys, nic, _, err := attacks.BootOnce(attacks.Kernel415, seed+int64(trials)+1, 0)
		if err != nil {
			return nil, err
		}
		return attacks.RunRingFlood(sys, nic, study), nil
	case "singlestep":
		sys, err := core.New(core.WithSeed(seed), core.WithIOMMUMode(mode))
		if err != nil {
			return nil, err
		}
		if _, err := sys.AddNIC(1, netstack.DriverI40E, 0); err != nil {
			return nil, err
		}
		build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
		if err != nil {
			return nil, err
		}
		atk := device.NewAttacker(1, sys.Bus, sys.Layout.Symbols(), build)
		blk, err := attacks.InstallBuggyDriver(sys, 1, 0)
		if err != nil {
			return nil, err
		}
		return attacks.RunSingleStep(sys, atk, blk), nil
	case "dos":
		sys, err := core.New(core.WithSeed(seed), core.WithIOMMUMode(mode))
		if err != nil {
			return nil, err
		}
		if _, err := sys.AddNIC(1, netstack.DriverI40E, 0); err != nil {
			return nil, err
		}
		build, err := kexec.ExtractBuildOffsets(sys.Kernel.Text(), sys.Layout.Symbols())
		if err != nil {
			return nil, err
		}
		atk := device.NewAttacker(1, sys.Bus, sys.Layout.Symbols(), build)
		return attacks.RunFreelistDoS(sys, atk), nil
	case "poisonedtx", "forward", "surveillance":
		opts := []core.Option{core.WithSeed(seed), core.WithIOMMUMode(mode)}
		if name != "poisonedtx" {
			opts = append(opts, core.WithForwarding())
		}
		sys, err := core.New(opts...)
		if err != nil {
			return nil, err
		}
		var log interface{ Render(int) string }
		if traceN > 0 {
			log = sys.EnableTracing(0)
		}
		nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
		if err != nil {
			return nil, err
		}
		defer func() {
			if log != nil {
				fmt.Print(log.Render(traceN))
			}
		}()
		switch name {
		case "poisonedtx":
			return attacks.RunPoisonedTX(sys, nic), nil
		case "forward":
			return attacks.RunForwardThinking(sys, nic), nil
		default:
			secret, err := sys.Mem.Slab.Kmalloc(1, 64, "vault")
			if err != nil {
				return nil, err
			}
			if err := sys.Mem.Write(secret, []byte("kernel secret bytes")); err != nil {
				return nil, err
			}
			r, got := attacks.RunSurveillance(sys, nic, secret, 19)
			r.Detail["leaked"] = fmt.Sprintf("%q", got)
			return r, nil
		}
	default:
		return nil, fmt.Errorf("unknown attack %q", name)
	}
}
