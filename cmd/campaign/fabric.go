package main

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/cliutil"
	"dmafault/internal/fabric"
	"dmafault/internal/netchaos"
	"dmafault/internal/obs"
	"dmafault/internal/resultstore"
)

// Coordinator mode: -coordinator turns this command into the fabric's
// control plane. The scenario set is partitioned into digest-addressed
// shards and leased to dmafaultd workers (-worker-urls and/or runtime joins
// via -coordinator-addr); dead workers are re-leased, zero workers degrade
// to local execution, and the merged summary is byte-identical to a plain
// single-node run of the same set.

// fabricFlags carries the -coordinator flag group from main.
type fabricFlags struct {
	WorkerURLs string
	Addr       string
	ShardSize  int
	LeaseTTL   time.Duration
	// LeaseAttempts bounds lease grants per shard before the coordinator
	// stops trusting the fabric with it (0: fabric default).
	LeaseAttempts int
	Heartbeat     time.Duration
	Journal       string
	Resume        bool
	MetricsOut    string
	NeedCache     bool
	Store         *resultstore.Store
	Workers       int
	// Byzantine-tolerance knobs: a netchaos plan for every worker-bound
	// request, the straggler steal delay, and the quarantine threshold.
	Netchaos           string
	NetchaosSeed       int64
	StealAfter         time.Duration
	ByzantineThreshold int
	// Fleet telemetry plane: -fleetobs / -fleet-interval.
	FleetObs      bool
	FleetInterval time.Duration
}

// runFabric drives one distributed campaign and emits the summary through
// the same output path as a local run.
func runFabric(cf *cliutil.Flags, log *slog.Logger, scenarios []campaign.Scenario, ff fabricFlags) error {
	var urls []string
	for _, u := range strings.Split(ff.WorkerURLs, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	cfg := fabric.Config{
		Workers:            urls,
		ShardSize:          ff.ShardSize,
		LeaseTTL:           ff.LeaseTTL,
		MaxLeaseAttempts:   ff.LeaseAttempts,
		Heartbeat:          ff.Heartbeat,
		NeedCache:          ff.NeedCache,
		JournalPath:        ff.Journal,
		Resume:             ff.Resume,
		LocalWorkers:       ff.Workers,
		StealAfter:         ff.StealAfter,
		ByzantineThreshold: ff.ByzantineThreshold,
		FleetObs:           ff.FleetObs,
		FleetInterval:      ff.FleetInterval,
		Log:                log,
	}
	var chaos *netchaos.Transport
	if ff.Netchaos != "" {
		plan, err := netchaos.ParseSpec(ff.Netchaos)
		if err != nil {
			return err
		}
		plan.Seed = ff.NetchaosSeed
		chaos = netchaos.NewTransport(plan, nil)
		cfg.Transport = chaos
		log.Warn("netchaos armed: every worker-bound request rides the fault plan",
			"plan", ff.Netchaos, "seed", ff.NetchaosSeed)
	}
	if ff.Store != nil {
		cfg.Store = ff.Store
	}
	if ff.Addr != "" {
		cfg.Hub = obs.NewHub()
	}
	coord := fabric.New(cfg)

	// SIGTERM/SIGINT cancel the run; in-flight leases are abandoned (their
	// workers get a best-effort cancel) and the state log keeps everything
	// already delivered, so -resume picks the campaign back up.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	if ff.Addr != "" {
		ln, err := net.Listen("tcp", ff.Addr)
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: coord.Handler()}
		go func() {
			if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("coordinator server", "err", err)
			}
		}()
		defer hs.Close()
		// soaksmoke parses this record like dmafaultd's — keep msg/addr stable.
		log.Info("coordinator listening", "addr", ln.Addr().String(),
			"workers", len(urls), "shard_size", cfg.ShardSize)
	}

	start := time.Now()
	summary, err := coord.Run(ctx, scenarios)
	status := "done"
	if err != nil {
		status = "failed"
	}
	coord.PublishStatus(status)
	if ff.MetricsOut != "" {
		// Written on failure too: a cancelled coordinator's re-lease
		// counters are exactly what the operator wants to see.
		if werr := os.WriteFile(ff.MetricsOut, coord.Metrics().Text(), 0o644); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	jsonOut := *cf.JSON
	if *cf.Out != "" || jsonOut {
		data, err := summary.JSON()
		if err != nil {
			return err
		}
		if err := cf.WriteOut(data); err != nil {
			return err
		}
		if jsonOut {
			os.Stdout.Write(append(data, '\n'))
		}
	}
	if !jsonOut {
		fmt.Print(summary.Render())
	}
	log.Info("fabric campaign complete",
		"scenarios", len(scenarios),
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"rate", fmt.Sprintf("%.1f/s", float64(len(scenarios))/elapsed.Seconds()),
		"workers", len(urls))
	if chaos != nil {
		log.Info("netchaos injections", "counts", chaos.CountsText())
	}
	return nil
}
