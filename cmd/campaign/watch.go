package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Watch mode: tail a running dmafaultd job over its SSE event stream
// (GET /campaigns/{id}/events) and render each event as one line. The stream
// carries cumulative "progress" heartbeats, completed "span" records,
// per-scenario "result" records, and a terminal "status" event, after which
// the server closes the stream.

// watchJob connects to the job's event stream and copies events to w until
// the terminal status arrives (or the stream ends). It returns the final
// status it saw ("" if the stream ended without one).
func watchJob(w io.Writer, jobURL string) (string, error) {
	u := strings.TrimRight(jobURL, "/")
	if !strings.HasSuffix(u, "/events") {
		u += "/events"
	}
	resp, err := http.Get(u)
	if err != nil {
		return "", fmt.Errorf("watch %s: %w", u, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return "", fmt.Errorf("watch %s: %s: %s", u, resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			fmt.Fprintf(w, "%-8s %s\n", event, data)
			if event == "status" {
				var st struct {
					Status string `json:"status"`
				}
				_ = json.Unmarshal([]byte(data), &st)
				return st.Status, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", fmt.Errorf("watch %s: %w", u, err)
	}
	return "", nil
}
