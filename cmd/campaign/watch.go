package main

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dmafault/internal/faultdclient"
)

// Watch mode: tail a running dmafaultd job over its SSE event stream
// (GET /v1/campaigns/{id}/events, via the typed client) and render each
// event as one line. The stream carries cumulative "progress" heartbeats,
// completed "span" records, per-scenario "result" records, and a terminal
// "status" event, after which the server closes the stream.

// watchJob connects to the job's event stream and copies events to w until
// the terminal status arrives (or the stream ends). It returns the final
// status it saw ("" if the stream ended without one).
func watchJob(w io.Writer, jobURL string) (string, error) {
	base, id, err := parseJobURL(jobURL)
	if err != nil {
		return "", err
	}
	c := faultdclient.New(base)
	return c.Watch(context.Background(), id, func(e faultdclient.Event) error {
		_, err := fmt.Fprintf(w, "%-8s %s\n", e.Type, e.Data)
		return err
	})
}

// parseJobURL splits a job URL — /v1/campaigns/{id}, the legacy unversioned
// form, or either with a trailing /events — into the service base and the
// job ID.
func parseJobURL(jobURL string) (base string, id int, err error) {
	u := strings.TrimRight(jobURL, "/")
	u = strings.TrimSuffix(u, "/events")
	base, rest, ok := strings.Cut(u, "/campaigns/")
	if !ok {
		return "", 0, fmt.Errorf("watch %s: not a job URL (want .../v1/campaigns/<id>)", jobURL)
	}
	id, err = strconv.Atoi(rest)
	if err != nil || id < 1 {
		return "", 0, fmt.Errorf("watch %s: bad job id %q", jobURL, rest)
	}
	return strings.TrimSuffix(base, "/v1"), id, nil
}
