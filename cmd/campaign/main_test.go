package main

import (
	"strings"
	"testing"

	"dmafault/internal/campaign"
)

func TestEmptyRunNothingToDo(t *testing.T) {
	var text, js strings.Builder
	if !emptyRun(&text, nil, false) {
		t.Fatal("zero scenarios must short-circuit")
	}
	if got := text.String(); !strings.Contains(got, "nothing to do") {
		t.Errorf("text output %q lacks the nothing-to-do notice", got)
	}
	if !emptyRun(&js, []campaign.Scenario{}, true) {
		t.Fatal("zero scenarios must short-circuit in JSON mode too")
	}
	if got := js.String(); !strings.Contains(got, `"scenarios":0`) {
		t.Errorf("json output %q lacks the scenario count", got)
	}
}

func TestEmptyRunPassesThroughWork(t *testing.T) {
	var out strings.Builder
	if emptyRun(&out, []campaign.Scenario{{Kind: campaign.KindRingFlood}}, false) {
		t.Fatal("non-empty scenario set must not short-circuit")
	}
	if out.Len() != 0 {
		t.Errorf("unexpected output for non-empty set: %q", out.String())
	}
}
