// Command campaign runs declarative scenario campaigns on the parallel
// engine (internal/campaign): generate or load a scenario set, shard it
// across workers, and emit a deterministic text or JSON summary. The same
// seed always produces the same scenario set and byte-identical JSON at any
// worker count.
//
// Usage:
//
//	campaign                                  # 24-scenario mixed smoke run
//	campaign -preset mixed -n 200 -workers 8  # the §6-shaped grind
//	campaign -preset ladder -n 16 -json       # Fig. 7 matrix as a campaign
//	campaign -preset fuzz -n 64 -save set.json  # generate, save, and run
//	campaign -scenarios set.json -workers 4   # re-run a saved set
//	campaign -list                            # available presets and kinds
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/par"
)

func main() {
	preset := flag.String("preset", "mixed", "scenario generator: mixed|fuzz|bootstudy|ringflood|ladder")
	n := flag.Int("n", 24, "scenario count to generate")
	seed := flag.Int64("seed", 2021, "campaign seed (drives generation and every boot)")
	workers := flag.Int("workers", 0, "worker pool size (0 = one per CPU)")
	scenarioFile := flag.String("scenarios", "", "load scenario set from JSON instead of generating")
	save := flag.String("save", "", "write the scenario set to this JSON file before running")
	jsonOut := flag.Bool("json", false, "emit the JSON summary instead of the text report")
	out := flag.String("out", "", "also write the JSON summary to this file")
	quiet := flag.Bool("quiet", false, "suppress progress lines")
	list := flag.Bool("list", false, "list presets and scenario kinds, then exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(campaign.Presets))
		for name := range campaign.Presets {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("presets:", names)
		fmt.Println("kinds:  ", campaign.Kinds())
		return
	}

	var scenarios []campaign.Scenario
	if *scenarioFile != "" {
		var err error
		if scenarios, err = campaign.LoadScenarioFile(*scenarioFile); err != nil {
			fatal(err)
		}
	} else {
		gen, ok := campaign.Presets[*preset]
		if !ok {
			fatal(fmt.Errorf("unknown preset %q (try -list)", *preset))
		}
		scenarios = gen(*n, *seed)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := campaign.SaveScenarios(f, scenarios); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	eng := campaign.Engine{Workers: *workers}
	var done atomic.Int64
	if !*quiet {
		total := len(scenarios)
		eng.OnResult = func(i int, r *campaign.Result) {
			d := done.Add(1)
			status := "ok"
			if r.Err != "" {
				status = "ERR"
			} else if !r.Success {
				status = "miss"
			}
			fmt.Fprintf(os.Stderr, "[%4d/%d] %-40s %s\n", d, total, r.ID, status)
		}
	}
	start := time.Now()
	summary, err := eng.Run(scenarios)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	if *out != "" || *jsonOut {
		data, err := summary.JSON()
		if err != nil {
			fatal(err)
		}
		if *out != "" {
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				fatal(err)
			}
		}
		if *jsonOut {
			os.Stdout.Write(append(data, '\n'))
		}
	}
	if !*jsonOut {
		fmt.Print(summary.Render())
	}
	w := *workers
	if w <= 0 {
		w = par.DefaultWorkers()
	}
	fmt.Fprintf(os.Stderr, "ran %d scenarios in %.1fs (%.1f scenarios/s, %d workers)\n",
		len(scenarios), elapsed.Seconds(), float64(len(scenarios))/elapsed.Seconds(), w)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
	os.Exit(1)
}
