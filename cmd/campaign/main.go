// Command campaign runs declarative scenario campaigns on the parallel
// engine (internal/campaign): generate or load a scenario set, shard it
// across workers, and emit a deterministic text or JSON summary. The same
// seed always produces the same scenario set and byte-identical JSON at any
// worker count.
//
// Usage:
//
//	campaign                                  # 24-scenario mixed smoke run
//	campaign -preset mixed -n 200 -workers 8  # the §6-shaped grind
//	campaign -preset ladder -n 16 -json       # Fig. 7 matrix as a campaign
//	campaign -preset fuzz -n 64 -save set.json  # generate, save, and run
//	campaign -scenarios set.json -workers 4   # re-run a saved set
//	campaign -fault "dma-corrupt:0.01" -n 16  # inject faults into every boot
//	campaign -journal run.jsonl ...           # record completed scenarios
//	campaign -journal run.jsonl -resume ...   # skip scenarios already done
//	campaign -fuzz -fuzz-attempts 64          # coverage-guided fuzz campaign
//	campaign -fuzz -fuzz-corpus c.jsonl -resume  # continue a fuzz corpus
//	campaign -spans spans.jsonl ...           # export wall-clock spans as JSONL
//	campaign -cache results.bin ...           # replay cached results, record new ones
//	campaign -cache results.bin -require-cached ...  # assert a fully warm cache
//	campaign -cache results.bin -cache-compact  # drop superseded/stale records
//	campaign -watch http://localhost:8077/v1/campaigns/1  # tail a dmafaultd job
//	campaign -list                            # available presets and kinds
//
// Coordinator mode distributes one campaign across dmafaultd worker nodes
// (internal/fabric) and merges the results byte-identically with a local
// run — dead workers are re-leased, and the state log survives a
// coordinator kill:
//
//	campaign -coordinator -worker-urls http://w1:8077,http://w2:8077 \
//	    -preset mixed -n 200 -out summary.json
//	campaign -coordinator -coordinator-addr :9100 ...   # + join/SSE surface
//	campaign -coordinator -coordinator-addr :9100 -fleetobs ...  # + /v1/fleet (fabrictop)
//	campaign -coordinator -fabric-journal c.jsonl ...   # journal the run
//	campaign -coordinator -fabric-journal c.jsonl -resume ...  # pick it back up
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/cliutil"
	"dmafault/internal/faultd"
	"dmafault/internal/faultinject"
	"dmafault/internal/obs"
	"dmafault/internal/par"
	"dmafault/internal/resultstore"
)

func main() {
	preset := flag.String("preset", "mixed", "scenario generator: mixed|fuzz|bootstudy|ringflood|ladder")
	n := flag.Int("n", 24, "scenario count to generate")
	scenarioFile := flag.String("scenarios", "", "load scenario set from JSON instead of generating")
	save := flag.String("save", "", "write the scenario set to this JSON file before running")
	list := flag.Bool("list", false, "list presets and scenario kinds, then exit")
	faultSpec := flag.String("fault", "", "fault-injection spec applied to scenarios without their own (e.g. \"dma-corrupt:0.01,alloc-fail@3\")")
	journalPath := flag.String("journal", "", "record completed scenarios to this JSONL journal")
	resume := flag.Bool("resume", false, "with -journal: skip scenarios the journal already records and append new ones")
	spansOut := flag.String("spans", "", "write the run's wall-clock spans (campaign/scenario/attempt) to this JSONL file")
	fuzzMode := flag.Bool("fuzz", false, "run a coverage-guided fuzz campaign instead of a fixed scenario set")
	fuzzAttempts := flag.Int("fuzz-attempts", 0, "fuzz execution budget (0: default, unless -fuzz-time is set)")
	fuzzTime := flag.Duration("fuzz-time", 0, "bound the fuzz run by wall clock instead of attempts")
	fuzzBatch := flag.Int("fuzz-batch", 0, "scenarios per fuzz round (0: default)")
	fuzzCorpus := flag.String("fuzz-corpus", "", "persist the fuzz corpus to this JSONL file (-resume continues it)")
	fuzzMinimize := flag.Int("fuzz-minimize", 0, "per-entry minimization budget (0: default; negative: skip minimization)")
	watch := flag.String("watch", "", "tail a running dmafaultd job over SSE instead of running locally (job URL, e.g. http://localhost:8077/v1/campaigns/1)")
	coordinator := flag.Bool("coordinator", false, "run as a fabric coordinator: shard the campaign across dmafaultd workers and merge the results")
	workerURLs := flag.String("worker-urls", "", "comma-separated dmafaultd worker base URLs for -coordinator (more may join at runtime via -coordinator-addr)")
	coordAddr := flag.String("coordinator-addr", "", "serve the fabric supervision surface (join, workers, SSE events, metrics) on this address")
	leaseTTL := flag.Duration("lease-ttl", 0, "shard lease time budget; an expired lease re-leases the shard to another worker (0: default)")
	leaseAttempts := flag.Int("lease-attempts", 0, "lease grants per shard before giving up on the fabric (evidence of a killed job bisects; anything else runs the shard locally) (0: default)")
	shardSize := flag.Int("shard-size", 0, "scenarios per shard lease (0: default)")
	fabricHeartbeat := flag.Duration("fabric-heartbeat", 0, "worker readiness probe cadence (0: default)")
	fabricJournal := flag.String("fabric-journal", "", "coordinator state log; with -resume a killed coordinator picks the campaign back up")
	fabricMetrics := flag.String("fabric-metrics", "", "write the final fabric_* metric families (Prometheus text) to this file")
	needWorkerCache := flag.Bool("need-worker-cache", false, "refuse to lease shards to workers running without a shared result cache")
	netchaosSpec := flag.String("netchaos", "", "with -coordinator: deterministic network-chaos plan applied to every worker-bound request (e.g. \"bitflip:0.3,truncate:0.1,partition:0.01\")")
	netchaosSeed := flag.Int64("netchaos-seed", 0, "decision seed for the -netchaos plan")
	stealAfter := flag.Duration("steal-after", 0, "with -coordinator: speculatively re-lease a shard still outstanding after this long to an idle worker; first valid delivery wins (0: disabled)")
	byzantineThreshold := flag.Int("byzantine-threshold", 0, "with -coordinator: integrity-rejected deliveries that quarantine a worker (0: default)")
	fleetObs := flag.Bool("fleetobs", false, "with -coordinator: run the fleet telemetry plane (worker scraping, GET /v1/fleet, \"fleet\" SSE events; see fabrictop)")
	fleetInterval := flag.Duration("fleet-interval", 0, "with -fleetobs: worker scrape cadence (0: default)")
	cachePath := flag.String("cache", "", "content-addressed result cache file: scenarios already recorded replay instead of executing; new results are appended")
	cacheCompact := flag.Bool("cache-compact", false, "with -cache: rewrite the cache log dropping superseded and stale-engine records, print stats, and exit")
	requireCached := flag.Bool("require-cached", false, "with -cache: exit nonzero unless every scenario was served from the cache (proves a warm cache executes nothing)")
	cf := cliutil.New("campaign").WithSeed().WithWorkers().WithJSON().WithOut().WithQuiet().WithLog()
	cf.Parse()
	seed, workers, jsonOut := cf.Seed, cf.Workers, cf.JSON
	log := cf.Logger(nil)

	if *watch != "" {
		status, err := watchJob(os.Stdout, *watch)
		if err != nil {
			cf.Fatal(err)
		}
		if status != string(faultd.StatusDone) {
			cf.Fatal(fmt.Errorf("job finished with status %q", status))
		}
		return
	}

	if *cacheCompact {
		if *cachePath == "" {
			cf.Fatal(fmt.Errorf("-cache-compact requires -cache"))
		}
		cs, err := resultstore.Compact(*cachePath)
		if err != nil {
			cf.Fatal(err)
		}
		fmt.Printf("cache compacted: %d -> %d records (%d stale, %d superseded dropped), %d -> %d bytes\n",
			cs.RecordsBefore, cs.RecordsAfter, cs.DroppedStale, cs.DroppedSuperseded,
			cs.BytesBefore, cs.BytesAfter)
		return
	}
	var store *resultstore.Store
	if *cachePath != "" {
		var err error
		if store, err = resultstore.Open(*cachePath); err != nil {
			cf.Fatal(err)
		}
		defer store.Close()
	} else if *requireCached {
		cf.Fatal(fmt.Errorf("-require-cached requires -cache"))
	}

	if *list {
		names := make([]string, 0, len(campaign.Presets))
		for name := range campaign.Presets {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("presets:", names)
		fmt.Println("kinds:  ", campaign.AllKinds())
		return
	}

	if *fuzzMode {
		if err := runFuzz(cf, log, fuzzOptions{
			Attempts: *fuzzAttempts, WallTime: *fuzzTime, Batch: *fuzzBatch,
			Corpus: *fuzzCorpus, Resume: *resume, Minimize: *fuzzMinimize,
			Cache: store, RequireCached: *requireCached,
		}); err != nil {
			cf.Fatal(err)
		}
		return
	}

	var scenarios []campaign.Scenario
	if *scenarioFile != "" {
		var err error
		if scenarios, err = campaign.LoadScenarioFile(*scenarioFile); err != nil {
			cf.Fatal(err)
		}
	} else {
		gen, ok := campaign.Presets[*preset]
		if !ok {
			cf.Fatal(fmt.Errorf("unknown preset %q (try -list)", *preset))
		}
		scenarios = gen(*n, *seed)
	}
	if *faultSpec != "" {
		if _, err := faultinject.ParseSpec(*faultSpec); err != nil {
			cf.Fatal(err)
		}
		for i := range scenarios {
			if scenarios[i].FaultSpec == "" {
				scenarios[i].FaultSpec = *faultSpec
			}
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			cf.Fatal(err)
		}
		if err := campaign.SaveScenarios(f, scenarios); err != nil {
			cf.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cf.Fatal(err)
		}
	}
	if *resume && *journalPath == "" && *fuzzCorpus == "" && *fabricJournal == "" {
		cf.Fatal(fmt.Errorf("-resume requires -journal (or -fuzz -fuzz-corpus, or -coordinator -fabric-journal)"))
	}
	// An empty scenario set (e.g. -n 0, or an exhausted generator on a
	// resumed run) is a clean no-op: report it and exit 0 without touching
	// the journal, so a stray header line never clobbers resume state.
	if emptyRun(os.Stdout, scenarios, *jsonOut) {
		return
	}

	if *coordinator {
		if err := runFabric(cf, log, scenarios, fabricFlags{
			WorkerURLs: *workerURLs, Addr: *coordAddr,
			ShardSize: *shardSize, LeaseTTL: *leaseTTL, LeaseAttempts: *leaseAttempts,
			Heartbeat: *fabricHeartbeat,
			Journal:   *fabricJournal, Resume: *resume, MetricsOut: *fabricMetrics,
			NeedCache: *needWorkerCache, Store: store, Workers: *workers,
			Netchaos: *netchaosSpec, NetchaosSeed: *netchaosSeed,
			StealAfter: *stealAfter, ByzantineThreshold: *byzantineThreshold,
			FleetObs: *fleetObs, FleetInterval: *fleetInterval,
		}); err != nil {
			cf.Fatal(err)
		}
		return
	}

	eng := campaign.Engine{Workers: *workers}
	var cacheHits atomic.Int64
	if store != nil {
		eng.Cache = store
		eng.OnCacheHit = func(int) { cacheHits.Add(1) }
	}
	var spanCol *obs.Collector
	if *spansOut != "" {
		spanCol = &obs.Collector{}
		eng.Obs = obs.NewTracer(spanCol.Sink())
	}
	if *journalPath != "" {
		if *resume {
			restored, err := campaign.LoadJournal(*journalPath, scenarios)
			if err != nil {
				cf.Fatal(err)
			}
			eng.Completed = restored
			if len(restored) > 0 {
				log.Info("resumed from journal",
					"restored", len(restored), "total", len(scenarios), "journal", *journalPath)
			}
		}
		j, err := campaign.OpenJournal(*journalPath, scenarios, *resume)
		if err != nil {
			cf.Fatal(err)
		}
		defer j.Close()
		eng.Journal = j
	}
	var done atomic.Int64
	done.Store(int64(len(eng.Completed)))
	if log.Enabled(context.Background(), slog.LevelInfo) {
		total := len(scenarios)
		eng.OnResult = func(i int, r *campaign.Result) {
			d := done.Add(1)
			status := "ok"
			if r.Err != "" {
				status = "ERR"
			} else if !r.Success {
				status = "miss"
			}
			if r.Outcome != "" {
				status = r.Outcome
			}
			log.Info("scenario done", "done", d, "total", total, "id", r.ID, "status", status)
		}
	}
	start := time.Now()
	summary, err := eng.Run(scenarios)
	if err != nil {
		cf.Fatal(err)
	}
	elapsed := time.Since(start)

	if store != nil {
		st := store.Stats()
		log.Info("result cache", "path", st.Path, "hits", cacheHits.Load(),
			"misses", st.Misses, "records", st.Records)
		if *requireCached && st.Misses > 0 {
			cf.Fatal(fmt.Errorf("require-cached: %d scenarios missed the cache and executed", st.Misses))
		}
	}

	if spanCol != nil {
		f, err := os.Create(*spansOut)
		if err != nil {
			cf.Fatal(err)
		}
		if err := spanCol.WriteJSONL(f); err != nil {
			cf.Fatal(err)
		}
		if err := f.Close(); err != nil {
			cf.Fatal(err)
		}
		log.Info("spans written", "path", *spansOut, "spans", len(spanCol.Spans()))
	}

	if *cf.Out != "" || *jsonOut {
		data, err := summary.JSON()
		if err != nil {
			cf.Fatal(err)
		}
		if err := cf.WriteOut(data); err != nil {
			cf.Fatal(err)
		}
		if *jsonOut {
			os.Stdout.Write(append(data, '\n'))
		}
	}
	if !*jsonOut {
		fmt.Print(summary.Render())
	}
	w := *workers
	if w <= 0 {
		w = par.DefaultWorkers()
	}
	log.Info("campaign complete",
		"scenarios", len(scenarios),
		"elapsed", elapsed.Round(time.Millisecond).String(),
		"rate", fmt.Sprintf("%.1f/s", float64(len(scenarios))/elapsed.Seconds()),
		"workers", w)
}
