package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/cliutil"
	"dmafault/internal/fuzz"
	"dmafault/internal/resultstore"

	"log/slog"
)

type fuzzOptions struct {
	Attempts int
	WallTime time.Duration
	Batch    int
	Corpus   string
	Resume   bool
	Minimize int
	// Cache replays recorded scenario results instead of executing (nil:
	// every attempt executes); RequireCached fails the run on any miss.
	Cache         *resultstore.Store
	RequireCached bool
}

// runFuzz executes the coverage-guided fuzz loop and renders its report the
// same way fixed campaigns render summaries (-json/-out respected).
func runFuzz(cf *cliutil.Flags, log *slog.Logger, opt fuzzOptions) error {
	cfg := fuzz.Config{
		Seed:           *cf.Seed,
		Workers:        *cf.Workers,
		Attempts:       opt.Attempts,
		WallTime:       opt.WallTime,
		Batch:          opt.Batch,
		CorpusPath:     opt.Corpus,
		Resume:         opt.Resume,
		MinimizeBudget: opt.Minimize,
	}
	if opt.Cache != nil {
		cfg.Cache = opt.Cache
	}
	if log.Enabled(context.Background(), slog.LevelInfo) {
		cfg.OnRound = func(st fuzz.RoundStats) {
			log.Info("fuzz round", "round", st.Round, "execs", st.Execs,
				"corpus", st.CorpusSize, "signatures", st.Signatures, "novel", st.Novel)
		}
	}
	start := time.Now()
	rep, err := fuzz.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *cf.Out != "" || *cf.JSON {
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := cf.WriteOut(data); err != nil {
			return err
		}
		if *cf.JSON {
			os.Stdout.Write(append(data, '\n'))
		}
	}
	if !*cf.JSON {
		renderFuzzReport(os.Stdout, rep)
	}
	log.Info("fuzz complete", "execs", rep.Execs+rep.MinimizeExecs,
		"elapsed", elapsed.Round(time.Millisecond).String())
	if opt.Cache != nil {
		st := opt.Cache.Stats()
		log.Info("result cache", "path", st.Path, "hits", st.Hits,
			"misses", st.Misses, "records", st.Records)
		if opt.RequireCached && st.Misses > 0 {
			return fmt.Errorf("require-cached: %d attempts missed the cache and executed", st.Misses)
		}
	}
	return nil
}

func renderFuzzReport(w io.Writer, rep *fuzz.Report) {
	fmt.Fprintln(w, rep.String())
	for _, sig := range rep.Signatures {
		fmt.Fprintln(w, "  "+sig)
	}
}

// emptyRun reports (and handles) the nothing-to-do case: zero scenarios
// after generation, loading, or resume filtering. Returns true when the
// caller should exit successfully without running the engine or opening a
// journal.
func emptyRun(w io.Writer, scenarios []campaign.Scenario, jsonOut bool) bool {
	if len(scenarios) != 0 {
		return false
	}
	if jsonOut {
		fmt.Fprintln(w, `{"scenarios":0,"note":"nothing to do"}`)
	} else {
		fmt.Fprintln(w, "campaign: nothing to do (0 scenarios)")
	}
	return true
}
