// Command experiments regenerates the paper's tables and figures on the
// simulated substrates.
//
// Usage:
//
//	experiments              # run everything at paper scale (256 reboots)
//	experiments -quick       # reduced scale for smoke runs
//	experiments -run F7      # one experiment
//	experiments -out out.txt # also write the combined artifact to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmafault/internal/cliutil"
	"dmafault/internal/experiments"
)

func main() {
	id := flag.String("run", "", "experiment ID (T1,T2,F1..F9,S2.4,S5.2.1,S5.3,S6,S7); empty = all")
	quick := flag.Bool("quick", false, "reduced trial counts")
	trials := flag.Int("trials", 0, "override boot-study trial count")
	cf := cliutil.New("experiments").WithOut().WithLog()
	cf.Parse()
	log := cf.Logger(nil)
	log.Debug("experiments starting", "run", *id, "quick", *quick)

	cfg := experiments.DefaultConfig
	if *quick {
		cfg = experiments.QuickConfig
	}
	if *trials > 0 {
		cfg.BootTrials = *trials
	}

	var outcomes []*experiments.Outcome
	if *id != "" {
		o, err := experiments.Run(*id, cfg)
		if err != nil {
			cf.Fatal(err)
		}
		outcomes = []*experiments.Outcome{o}
	} else {
		var err error
		outcomes, err = experiments.All(cfg)
		if err != nil {
			cf.Fatal(err)
		}
	}
	var b strings.Builder
	failed := 0
	for _, o := range outcomes {
		b.WriteString(o.Render())
		b.WriteString("\n")
		if !o.OK {
			failed++
		}
	}
	fmt.Fprintf(&b, "=== %d/%d experiments reproduced the paper's claims ===\n", len(outcomes)-failed, len(outcomes))
	fmt.Print(b.String())
	if err := cf.WriteOut([]byte(b.String())); err != nil {
		cf.Fatal(err)
	}
	if failed > 0 {
		os.Exit(2)
	}
}
