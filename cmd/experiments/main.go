// Command experiments regenerates the paper's tables and figures on the
// simulated substrates.
//
// Usage:
//
//	experiments              # run everything at paper scale (256 reboots)
//	experiments -quick       # reduced scale for smoke runs
//	experiments -run F7      # one experiment
//	experiments -out out.txt # also write the combined artifact to a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmafault/internal/experiments"
)

func main() {
	id := flag.String("run", "", "experiment ID (T1,T2,F1..F9,S2.4,S5.2.1,S5.3,S6,S7); empty = all")
	quick := flag.Bool("quick", false, "reduced trial counts")
	trials := flag.Int("trials", 0, "override boot-study trial count")
	out := flag.String("out", "", "also write the combined output to this file")
	flag.Parse()

	cfg := experiments.DefaultConfig
	if *quick {
		cfg = experiments.QuickConfig
	}
	if *trials > 0 {
		cfg.BootTrials = *trials
	}

	var outcomes []*experiments.Outcome
	if *id != "" {
		o, err := experiments.Run(*id, cfg)
		if err != nil {
			fatal(err)
		}
		outcomes = []*experiments.Outcome{o}
	} else {
		var err error
		outcomes, err = experiments.All(cfg)
		if err != nil {
			fatal(err)
		}
	}
	var b strings.Builder
	failed := 0
	for _, o := range outcomes {
		b.WriteString(o.Render())
		b.WriteString("\n")
		if !o.OK {
			failed++
		}
	}
	fmt.Fprintf(&b, "=== %d/%d experiments reproduced the paper's claims ===\n", len(outcomes)-failed, len(outcomes))
	fmt.Print(b.String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if failed > 0 {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
	os.Exit(1)
}
