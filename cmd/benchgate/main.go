// Command benchgate is a benchstat-style regression gate over the committed
// benchmark artifacts (BENCH_N.json, written by `make bench` through
// cmd/benchjson). It discovers the two newest artifacts by numeric suffix,
// compares ns/op for the gated benchmark families — the fabric throughput
// and campaign cache-hit paths, whose regressions are coordination-layer
// bugs rather than simulator noise — and exits nonzero when the newer
// artifact is more than -threshold slower on any shared sub-benchmark.
//
// The gate is advisory in CI (continue-on-error): single-iteration bench
// runs are noisy, and the artifact pair may span machines. A failure is a
// prompt to re-run `make bench` and look, not an automatic veto.
//
// Usage:
//
//	benchgate                      # compare two newest BENCH_*.json in .
//	benchgate -threshold 0.10      # tighter gate
//	benchgate BENCH_8.json BENCH_10.json   # explicit old new
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gatedPrefixes are the benchmark families the gate watches. Everything else
// in the artifact is simulator-shape benchmarking and drifts with content
// changes by design.
var gatedPrefixes = []string{
	"BenchmarkFabricThroughput",
	"BenchmarkCampaignCacheHit",
}

// document mirrors cmd/benchjson's artifact (the fields the gate reads).
type document struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

var benchNumRE = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func main() {
	threshold := flag.Float64("threshold", 0.20,
		"fail when new ns/op exceeds old by more than this fraction")
	dir := flag.String("dir", ".", "directory to discover BENCH_*.json in")
	flag.Parse()

	var oldPath, newPath string
	switch flag.NArg() {
	case 0:
		var err error
		oldPath, newPath, err = discover(*dir)
		if err != nil {
			fatal(err)
		}
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fatal(fmt.Errorf("want no args (auto-discover) or exactly two (old new), got %d", flag.NArg()))
	}

	oldNS, err := load(oldPath)
	if err != nil {
		fatal(err)
	}
	newNS, err := load(newPath)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("benchgate: %s -> %s (threshold +%.0f%%)\n", oldPath, newPath, *threshold*100)
	names := sharedGatedNames(oldNS, newNS)
	if len(names) == 0 {
		fatal(fmt.Errorf("no gated benchmarks (%s) shared by %s and %s",
			strings.Join(gatedPrefixes, ", "), oldPath, newPath))
	}
	failed := false
	for _, name := range names {
		o, n := oldNS[name], newNS[name]
		delta := (n - o) / o
		verdict := "ok"
		if delta > *threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Printf("  %-52s %14.0f -> %14.0f ns/op  %+6.1f%%  %s\n", name, o, n, delta*100, verdict)
	}
	if failed {
		fmt.Printf("benchgate: FAIL — gated benchmark regressed past +%.0f%%\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}

// discover returns the two newest committed artifacts by numeric suffix —
// the Nth and N-1th `make bench` snapshots.
func discover(dir string) (oldPath, newPath string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	type artifact struct {
		n    int
		path string
	}
	var found []artifact
	for _, e := range entries {
		m := benchNumRE.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, artifact{n: n, path: filepath.Join(dir, e.Name())})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("found %d BENCH_*.json artifacts in %s, need 2", len(found), dir)
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}

// load maps benchmark name to ns/op for one artifact.
func load(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	for _, b := range doc.Benchmarks {
		if ns, ok := b.Metrics["ns/op"]; ok {
			out[b.Name] = ns
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks with ns/op", path)
	}
	return out, nil
}

// sharedGatedNames lists gated benchmarks present in both artifacts, sorted.
// Sub-benchmarks only one side has (a family gained an arm) are not
// comparable and are skipped rather than failed.
func sharedGatedNames(oldNS, newNS map[string]float64) []string {
	var names []string
	for name := range newNS {
		if _, ok := oldNS[name]; !ok {
			continue
		}
		for _, p := range gatedPrefixes {
			if name == p || strings.HasPrefix(name, p+"/") {
				names = append(names, name)
				break
			}
		}
	}
	sort.Strings(names)
	return names
}
