package main

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"dmafault/internal/campaign"
)

// Chaos soak (`make chaossmoke`, soaksmoke -chaos): the byzantine-fabric
// end-to-end test. Three healthy workers, one coordinator — but every
// worker-bound request rides a deterministic netchaos plan that bit-flips
// and truncates response bodies, injects 503 storms, drops connections, and
// opens short per-host partitions. The coordinator must shrug all of it off:
// torn and corrupted deliveries are rejected (never merged), stragglers are
// stolen onto idle workers, and the merged summary still comes out
// byte-identical to a clean single-node run of the same scenario set. The
// final metrics file has to prove both defenses actually fired
// (fabric_integrity_rejected_total > 0, fabric_steals_total > 0).

// chaosPlanSpec is the wire-fault mix for the soak. Bit flips corrupt
// result payloads (caught by the digest/identity checks), truncation tears
// poll bodies mid-document, 503s and connection drops exercise the retry
// ladder, and the rare partition takes a worker fully dark for a few
// requests so heartbeat demotion and re-lease run too.
const (
	chaosPlanSpec = "bitflip:0.25,truncate:0.08,http-503:0.08,conn-drop:0.05,partition:0.01"
	chaosPlanSeed = "11"
)

var (
	integrityRE = regexp.MustCompile(`(?m)^fabric_integrity_rejected_total ([0-9.e+]+)$`)
	stealsRE    = regexp.MustCompile(`(?m)^fabric_steals_total ([0-9.e+]+)$`)
)

func runChaosSoak(log *slog.Logger, keep bool) error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "chaossmoke-")
	if err != nil {
		return err
	}
	if keep {
		log.Info("keeping scratch dir", "dir", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	daemonBin := filepath.Join(dir, "dmafaultd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, "./cmd/dmafaultd").CombinedOutput(); err != nil {
		return fmt.Errorf("build dmafaultd: %v\n%s", err, out)
	}
	campaignBin := filepath.Join(dir, "campaign")
	if out, err := exec.Command("go", "build", "-o", campaignBin, "./cmd/campaign").CombinedOutput(); err != nil {
		return fmt.Errorf("build campaign: %v\n%s", err, out)
	}

	// Stall scenarios (~250ms each) keep shards slow enough that the tail
	// shard is always mid-flight with idle workers around — the structural
	// guarantee that the steal path fires. 28 scenarios at -shard-size 4 is
	// 7 shards over 3 workers: an uneven tail every time.
	setPath := filepath.Join(dir, "set.json")
	f, err := os.Create(setPath)
	if err != nil {
		return err
	}
	if err := campaign.SaveScenarios(f, stallScenarios(28)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Reference: the same set on a clean single-node engine run — no fabric,
	// no chaos. This is the byte-identity oracle.
	singlePath := filepath.Join(dir, "single.json")
	if out, err := exec.Command(campaignBin,
		"-scenarios", setPath, "-out", singlePath, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("single-node reference run: %v\n%s", err, out)
	}

	// Three healthy workers; the hostility lives entirely in the transport.
	var urls []string
	for i := 1; i <= 3; i++ {
		w, err := startProc(log, dir, "worker", daemonBin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-max-concurrent-campaigns", "2", "-job-stall-timeout", "1m")
		if err != nil {
			return err
		}
		defer w.kill()
		urls = append(urls, w.url)
	}
	if err := preflightWorkers(ctx, urls, 10*time.Second); err != nil {
		return err
	}

	fabricPath := filepath.Join(dir, "fabric.json")
	metricsPath := filepath.Join(dir, "fabric-metrics.txt")
	coord, err := startProc(log, dir, "coordinator", campaignBin,
		"-coordinator", "-scenarios", setPath,
		"-worker-urls", strings.Join(urls, ","),
		"-coordinator-addr", "127.0.0.1:0",
		// -lease-attempts 6 keeps shards on the fabric through chaos-induced
		// failures (the default 3 exhausts fast under this plan and falls
		// back to local execution, which starves the steal path we assert on).
		"-shard-size", "4", "-lease-ttl", "20s", "-lease-attempts", "6",
		"-fabric-heartbeat", "200ms",
		"-netchaos", chaosPlanSpec, "-netchaos-seed", chaosPlanSeed,
		"-steal-after", "300ms", "-byzantine-threshold", "3",
		"-fabric-metrics", metricsPath,
		"-out", fabricPath,
	)
	if err != nil {
		return err
	}
	defer coord.kill()
	if err := coord.waitExit(3 * time.Minute); err != nil {
		return fmt.Errorf("coordinator under chaos: %w", err)
	}

	single, err := os.ReadFile(singlePath)
	if err != nil {
		return err
	}
	fab, err := os.ReadFile(fabricPath)
	if err != nil {
		return fmt.Errorf("fabric summary: %w", err)
	}
	if !bytes.Equal(single, fab) {
		return fmt.Errorf("chaos fabric summary differs from clean single-node run (%d vs %d bytes); kept at %s / %s",
			len(fab), len(single), fabricPath, singlePath)
	}

	// Both defenses must have actually fired: corrupted/torn deliveries
	// rejected, and at least one straggler speculatively re-leased.
	mt, err := os.ReadFile(metricsPath)
	if err != nil {
		return fmt.Errorf("fabric metrics: %w", err)
	}
	rejected, err := metricValue(mt, integrityRE, "fabric_integrity_rejected_total", metricsPath)
	if err != nil {
		return err
	}
	steals, err := metricValue(mt, stealsRE, "fabric_steals_total", metricsPath)
	if err != nil {
		return err
	}

	log.Info("chaos soak finished", "integrity_rejected", rejected,
		"steals", steals, "summary_bytes", len(fab))
	return nil
}

// metricValue extracts one counter from a metrics exposition and requires
// it to be positive — OmitZero means an exceptional-condition family that
// never fired is absent entirely, which is equally a failure here.
func metricValue(exposition []byte, re *regexp.Regexp, name, path string) (float64, error) {
	m := re.FindSubmatch(exposition)
	if m == nil {
		return 0, fmt.Errorf("%s missing from %s — the chaos plan never tripped it", name, path)
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("%s = %s, want > 0", name, m[1])
	}
	return v, nil
}
