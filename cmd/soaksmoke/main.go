// Command soaksmoke is the dmafaultd chaos soak behind `make soaksmoke`: it
// builds and boots the daemon, hammers the job plane with fault-injected
// campaigns, cancels some mid-flight, kill -9s the daemon while a campaign
// is running, restarts it against the same journal directory, and verifies
// that boot recovery resumes and finishes the interrupted work. A short run
// (~15s) that proves the whole supervision layer — admission, scheduler,
// journal recovery, graceful shutdown — on every `make check`. All daemon
// traffic goes through the typed /v1 client (internal/faultdclient).
//
// Usage:
//
//	soaksmoke            # default soak
//	soaksmoke -seed 7    # re-roll which jobs get cancelled
//	soaksmoke -fabric    # multi-node fabric soak (see fabricsoak.go)
//	soaksmoke -chaos     # byzantine fabric soak under netchaos (see chaossoak.go)
//	soaksmoke -fleet     # fleet observability soak (see fleetsoak.go)
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/cliutil"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// The daemon announces its listener as a structured slog record
// (msg=listening addr=HOST:PORT ...); addrRE pulls the resolved address out
// of that line.
var addrRE = regexp.MustCompile(`\baddr=(\S+)`)

func main() {
	keep := flag.Bool("keep", false, "keep the scratch directory for inspection")
	fabricSoak := flag.Bool("fabric", false,
		"run the multi-node fabric soak (coordinator + 3 workers, dead-worker re-lease, coordinator resume) instead of the daemon chaos soak")
	chaosSoak := flag.Bool("chaos", false,
		"run the byzantine fabric soak (coordinator + 3 workers under a netchaos plan: corrupt bodies, 503 storms, partitions; byte-compared against a clean single-node run) instead of the daemon chaos soak")
	fleetSoak := flag.Bool("fleet", false,
		"run the fleet observability soak (coordinator + 3 workers with -fleetobs under mild netchaos: /v1/fleet must attribute per-phase time to all workers, fabrictop -once must render them, and the summary must match a clean run) instead of the daemon chaos soak")
	cf := cliutil.New("soaksmoke").WithSeed().WithLog()
	cf.Parse()
	log := cf.Logger(nil)
	if *fabricSoak {
		if err := runFabricSoak(log, *keep); err != nil {
			log.Error("fabric soak failed", "err", err)
			os.Exit(1)
		}
		fmt.Println("fabricsmoke: OK")
		return
	}
	if *chaosSoak {
		if err := runChaosSoak(log, *keep); err != nil {
			log.Error("chaos soak failed", "err", err)
			os.Exit(1)
		}
		fmt.Println("chaossmoke: OK")
		return
	}
	if *fleetSoak {
		if err := runFleetSoak(log, *keep); err != nil {
			log.Error("fleet soak failed", "err", err)
			os.Exit(1)
		}
		fmt.Println("fleetsmoke: OK")
		return
	}
	if err := run(log, *cf.Seed, *keep); err != nil {
		log.Error("soak failed", "err", err)
		os.Exit(1)
	}
	fmt.Println("soaksmoke: OK")
}

func run(log *slog.Logger, seed int64, keep bool) error {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	dir, err := os.MkdirTemp("", "soaksmoke-")
	if err != nil {
		return err
	}
	if keep {
		log.Info("keeping scratch dir", "dir", dir)
	} else {
		defer os.RemoveAll(dir)
	}
	journalDir := filepath.Join(dir, "journals")
	if err := os.Mkdir(journalDir, 0o755); err != nil {
		return err
	}

	bin := filepath.Join(dir, "dmafaultd")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/dmafaultd").CombinedOutput(); err != nil {
		return fmt.Errorf("build dmafaultd: %v\n%s", err, out)
	}

	// Phase 1: boot, load the job plane, chaos-cancel, then kill -9.
	d, err := startDaemon(bin, journalDir)
	if err != nil {
		return err
	}
	defer d.kill()

	// Fast jobs with the fault plan armed: injected DMA corruption and
	// allocator pressure on every scenario, plus one deliberate scenario
	// panic, keep the hardened paths hot while the scheduler multiplexes
	// the jobs over 2 slots.
	var ids []int
	for i := 0; i < 6; i++ {
		fault := "dma-corrupt:0.01,alloc-fail:0.002"
		if i == 2 {
			fault = "scenario-panic@1"
		}
		acc, err := d.c.Submit(ctx, api.SubmitRequest{
			Name: fmt.Sprintf("soak-%d", i), Workers: 2,
			Scenarios: faultScenarios(4, 100+4*i, fault),
		})
		if err != nil {
			return err
		}
		ids = append(ids, acc.ID)
	}
	// The victim: serial 250ms stalls, long enough to be mid-flight when
	// the SIGKILL lands and to span the restart.
	acc, err := d.c.Submit(ctx, api.SubmitRequest{
		Name: "victim", Workers: 1, Scenarios: stallScenarios(10),
	})
	if err != nil {
		return err
	}
	victim := acc.ID

	// Random mid-flight cancels: each fast job has a 1-in-3 chance. A 409
	// means the job beat the cancel to the finish line — fine mid-chaos.
	cancelled := map[int]bool{}
	for _, id := range ids {
		if rng.Intn(3) == 0 {
			if _, err := d.c.Cancel(ctx, id); err != nil && !faultdclient.IsConflict(err) {
				return fmt.Errorf("cancel %d: %w", id, err)
			}
			cancelled[id] = true
		}
	}

	// Wait for the victim to make real progress, then pull the plug.
	if err := d.waitProgress(victim, 2, 30*time.Second); err != nil {
		return err
	}
	if err := d.kill(); err != nil {
		return fmt.Errorf("kill -9: %w", err)
	}

	// Phase 2: restart against the same journal directory; recovery must
	// re-register the interrupted victim and run it to completion.
	d2, err := startDaemon(bin, journalDir)
	if err != nil {
		return fmt.Errorf("restart: %w", err)
	}
	defer d2.kill()

	job, err := d2.waitTerminal(victim, 60*time.Second)
	if err != nil {
		return fmt.Errorf("victim after restart: %w", err)
	}
	if !job.Recovered {
		return fmt.Errorf("victim job %d not marked recovered: %+v", victim, job)
	}
	if job.Status != api.StatusDone || job.ScenariosDone != 10 {
		return fmt.Errorf("victim did not finish after recovery: %+v", job)
	}

	// The restarted daemon is a fresh service: fast jobs from phase 1 that
	// finished before the kill are finished journals (not re-registered),
	// and new submissions work immediately.
	check, err := d2.c.Submit(ctx, api.SubmitRequest{Name: "post-restart", Preset: "ladder", N: 4, Seed: 9})
	if err != nil {
		return fmt.Errorf("post-restart submit: %w", err)
	}
	if check.ID <= victim {
		return fmt.Errorf("post-restart job ID %d not past recovered ID %d", check.ID, victim)
	}
	if job, err := d2.waitTerminal(check.ID, 60*time.Second); err != nil || job.Status != api.StatusDone {
		return fmt.Errorf("post-restart job: %+v, %v", job, err)
	}

	// Graceful exit: SIGTERM drains and the process ends cleanly.
	if err := d2.term(15 * time.Second); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	log.Info("soak finished",
		"jobs", len(ids)+2, "chaos_cancelled", len(cancelled), "recovered_victim", victim)
	return nil
}

// faultScenarios builds n window-ladder scenarios with the given fault spec
// armed on each.
func faultScenarios(n, seed int, fault string) []campaign.Scenario {
	scs := make([]campaign.Scenario, n)
	for i := range scs {
		scs[i] = campaign.Scenario{Kind: "window-ladder", Seed: int64(seed + i), FaultSpec: fault}
	}
	return scs
}

func stallScenarios(n int) []campaign.Scenario {
	scs := make([]campaign.Scenario, n)
	for i := range scs {
		scs[i] = campaign.Scenario{Kind: "window-ladder", Seed: int64(300 + i), FaultSpec: "scenario-stall@1"}
	}
	return scs
}

// daemon wraps one dmafaultd process and its API client.
type daemon struct {
	cmd *exec.Cmd
	c   *faultdclient.Client
}

// startDaemon boots dmafaultd on an ephemeral port and waits for /healthz.
func startDaemon(bin, journalDir string) (*daemon, error) {
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-journal-dir", journalDir,
		"-max-concurrent-campaigns", "2",
		"-queue-depth", "32",
		"-job-stall-timeout", "1m",
		"-quarantine-threshold", "3",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// The daemon announces its resolved address once the listener exists.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if !strings.Contains(line, "msg=listening") {
				continue
			}
			if m := addrRE.FindStringSubmatch(line); m != nil {
				addrCh <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d := &daemon{cmd: cmd, c: faultdclient.New("http://" + addr)}
		if err := d.waitHealthy(10 * time.Second); err != nil {
			d.kill()
			return nil, err
		}
		return d, nil
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("daemon never announced its listener")
	}
}

func (d *daemon) kill() error {
	if d.cmd.Process == nil {
		return nil
	}
	err := d.cmd.Process.Kill() // SIGKILL: no drain, no journal flush beyond appended lines
	_, _ = d.cmd.Process.Wait()
	return err
}

// term sends SIGTERM and waits for a clean exit within the budget.
func (d *daemon) term(budget time.Duration) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { _, err := d.cmd.Process.Wait(); done <- err }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("did not exit within %s of SIGTERM", budget)
	}
}

func (d *daemon) waitHealthy(budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if body, err := d.c.Health(context.Background()); err == nil && body == "ok" {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s never became healthy", d.c.Base)
}

// waitProgress polls until the job has completed at least n scenarios.
func (d *daemon) waitProgress(id, n int, budget time.Duration) error {
	ctx := context.Background()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		j, err := d.c.Get(ctx, id)
		if err != nil {
			return err
		}
		if j.ScenariosDone >= n {
			return nil
		}
		if j.Status.Terminal() {
			return fmt.Errorf("job %d ended %q before making progress", id, j.Status)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("job %d never reached %d completions", id, n)
}

// waitTerminal polls until the job leaves the queued/running states.
func (d *daemon) waitTerminal(id int, budget time.Duration) (*api.Job, error) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	job, err := d.c.WaitTerminal(ctx, id, 0)
	if err != nil && job != nil {
		return job, fmt.Errorf("job %d still %s after %s", id, job.Status, budget)
	}
	return job, err
}
