package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestPreflightWorkers pins the fail-fast contract: a dead worker URL is
// reported by name within the preflight budget, and a healthy worker next
// to it is not dragged into the error.
func TestPreflightWorkers(t *testing.T) {
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte("ok"))
			return
		}
		http.NotFound(w, r)
	}))
	defer up.Close()
	// A URL that was valid once and is now connection-refused — the classic
	// "worker crashed before the soak" shape.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	if err := preflightWorkers(context.Background(), []string{up.URL}, 2*time.Second); err != nil {
		t.Fatalf("healthy worker failed preflight: %v", err)
	}

	start := time.Now()
	err := preflightWorkers(context.Background(), []string{up.URL, deadURL}, 500*time.Millisecond)
	if err == nil {
		t.Fatal("dead worker passed preflight")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("preflight took %s, want fail-fast within the budget", elapsed)
	}
	if !strings.Contains(err.Error(), deadURL) {
		t.Fatalf("error does not name the dead worker: %v", err)
	}
	if strings.Contains(err.Error(), up.URL) {
		t.Fatalf("error blames the healthy worker too: %v", err)
	}
}
