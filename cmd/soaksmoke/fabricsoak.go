package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// Fabric soak (`make fabricsmoke`, soaksmoke -fabric): the distributed
// campaign's end-to-end kill test. One coordinator, three workers; one
// worker is kill -9'd while it holds shard leases, then the coordinator
// itself is kill -9'd after the re-lease fires, restarted with -resume, and
// run to completion. The merged summary must be byte-identical to a plain
// single-node `campaign` run of the same scenario set, and the final
// fabric_releases_total must prove the dead worker's shards were actually
// re-leased — the whole robustness story, on every `make check`.

var releasesRE = regexp.MustCompile(`(?m)^fabric_releases_total ([0-9.e+]+)$`)

func runFabricSoak(log *slog.Logger, keep bool) error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "fabricsmoke-")
	if err != nil {
		return err
	}
	if keep {
		log.Info("keeping scratch dir", "dir", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	daemonBin := filepath.Join(dir, "dmafaultd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, "./cmd/dmafaultd").CombinedOutput(); err != nil {
		return fmt.Errorf("build dmafaultd: %v\n%s", err, out)
	}
	campaignBin := filepath.Join(dir, "campaign")
	if out, err := exec.Command("go", "build", "-o", campaignBin, "./cmd/campaign").CombinedOutput(); err != nil {
		return fmt.Errorf("build campaign: %v\n%s", err, out)
	}

	// The campaign: stall-fault scenarios slow enough that the fabric is
	// always mid-flight when the kills land, deterministic like any other.
	setPath := filepath.Join(dir, "set.json")
	f, err := os.Create(setPath)
	if err != nil {
		return err
	}
	if err := campaign.SaveScenarios(f, stallScenarios(32)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Reference: the same set on a plain single-node engine run.
	singlePath := filepath.Join(dir, "single.json")
	if out, err := exec.Command(campaignBin,
		"-scenarios", setPath, "-out", singlePath, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("single-node reference run: %v\n%s", err, out)
	}

	// Three workers; -workers 1 keeps shard jobs slow enough to be
	// mid-flight at kill time. w1 and w2 are static coordinator config, w3
	// registers at runtime through /v1/fabric/join.
	var ws []*proc
	for i := 1; i <= 3; i++ {
		w, err := startProc(log, dir, "worker", daemonBin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-max-concurrent-campaigns", "2", "-job-stall-timeout", "1m")
		if err != nil {
			return err
		}
		defer w.kill()
		ws = append(ws, w)
	}
	w1, w2, w3 := ws[0], ws[1], ws[2]

	fabricPath := filepath.Join(dir, "fabric.json")
	journalPath := filepath.Join(dir, "coordinator.jsonl")
	metricsPath := filepath.Join(dir, "fabric-metrics.txt")
	coordArgs := func(workers ...string) []string {
		return []string{
			"-coordinator", "-scenarios", setPath,
			"-worker-urls", strings.Join(workers, ","),
			"-coordinator-addr", "127.0.0.1:0",
			"-shard-size", "4", "-lease-ttl", "20s", "-fabric-heartbeat", "200ms",
			"-fabric-journal", journalPath, "-fabric-metrics", metricsPath,
			"-out", fabricPath,
		}
	}
	// Fail fast on dead workers before committing the soak budget: a typo'd
	// or crashed worker URL should be a one-line error, not a 3-minute
	// timeout with an opaque summary mismatch at the end.
	if err := preflightWorkers(ctx, []string{w1.url, w2.url}, 10*time.Second); err != nil {
		return err
	}
	coord, err := startProc(log, dir, "coordinator", campaignBin, coordArgs(w1.url, w2.url)...)
	if err != nil {
		return err
	}
	defer coord.kill()

	// Runtime join: w3 announces itself the way dmafaultd -join would.
	cc := faultdclient.New(coord.url)
	if _, err := cc.JoinFabric(ctx, api.JoinRequest{URL: w3.url}); err != nil {
		return fmt.Errorf("join w3: %w", err)
	}
	if wl, err := cc.FabricWorkers(ctx); err != nil || len(wl.Workers) != 3 {
		return fmt.Errorf("worker registry after join: %+v, %v", wl, err)
	}

	// Kill w1 the moment it holds shard leases — its in-flight shards must
	// be re-leased to the survivors.
	if err := waitForLease(ctx, cc, w1.url, 30*time.Second); err != nil {
		return err
	}
	if err := w1.kill(); err != nil {
		return fmt.Errorf("kill -9 w1: %w", err)
	}
	log.Info("worker killed", "worker", w1.url)

	// The re-lease is journaled before the replacement lease is granted;
	// once it is on disk, kill the coordinator too.
	if err := waitForJournal(journalPath, `"released":`, 60*time.Second); err != nil {
		return err
	}
	if err := coord.kill(); err != nil {
		return fmt.Errorf("kill -9 coordinator: %w", err)
	}
	log.Info("coordinator killed", "journal", journalPath)

	// Restart against the same state log; the resumed coordinator must
	// finish on the surviving workers with the dead one's results intact.
	args := append(coordArgs(w2.url, w3.url), "-resume")
	coord2, err := startProc(log, dir, "coordinator", campaignBin, args...)
	if err != nil {
		return fmt.Errorf("coordinator restart: %w", err)
	}
	defer coord2.kill()
	if err := coord2.waitExit(3 * time.Minute); err != nil {
		return fmt.Errorf("resumed coordinator: %w", err)
	}

	single, err := os.ReadFile(singlePath)
	if err != nil {
		return err
	}
	fab, err := os.ReadFile(fabricPath)
	if err != nil {
		return fmt.Errorf("fabric summary: %w", err)
	}
	if !bytes.Equal(single, fab) {
		return fmt.Errorf("fabric summary differs from single-node run (%d vs %d bytes); kept at %s / %s",
			len(fab), len(single), fabricPath, singlePath)
	}

	// fabric_releases_total survives the coordinator kill via journal
	// replay; > 0 proves the dead-worker path actually fired.
	mt, err := os.ReadFile(metricsPath)
	if err != nil {
		return fmt.Errorf("fabric metrics: %w", err)
	}
	m := releasesRE.FindSubmatch(mt)
	if m == nil {
		return fmt.Errorf("fabric_releases_total missing from %s", metricsPath)
	}
	releases, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil || releases <= 0 {
		return fmt.Errorf("fabric_releases_total = %s, want > 0", m[1])
	}

	// Survivors drain cleanly.
	for _, w := range []*proc{w2, w3} {
		if err := w.term(15 * time.Second); err != nil {
			return fmt.Errorf("worker shutdown: %w", err)
		}
	}
	log.Info("fabric soak finished", "releases", releases,
		"summary_bytes", len(fab))
	return nil
}

// preflightWorkers verifies every worker URL answers /healthz before the
// coordinator is launched. Each unreachable worker is named in the error so
// the operator knows exactly which endpoint to fix.
func preflightWorkers(ctx context.Context, urls []string, budget time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	down := make([]bool, len(urls))
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func(i int, u string) {
			defer wg.Done()
			cl := faultdclient.New(u)
			for {
				if body, err := cl.Health(ctx); err == nil && body == "ok" {
					return
				}
				if ctx.Err() != nil {
					down[i] = true
					return
				}
				time.Sleep(100 * time.Millisecond)
			}
		}(i, u)
	}
	wg.Wait()
	var dead []string
	for i, u := range urls {
		if down[i] {
			dead = append(dead, u)
		}
	}
	if len(dead) > 0 {
		return fmt.Errorf("worker preflight failed: unreachable at startup: %s "+
			"(no /healthz response within %s — check the worker URLs before soaking)",
			strings.Join(dead, ", "), budget)
	}
	return nil
}

// waitForLease polls the coordinator's worker registry until the worker
// holds at least one shard lease.
func waitForLease(ctx context.Context, cc *faultdclient.Client, worker string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		wl, err := cc.FabricWorkers(ctx)
		if err != nil {
			return err
		}
		for _, w := range wl.Workers {
			if w.URL == worker && w.Leases > 0 {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("worker %s never held a lease", worker)
}

// waitForJournal polls the coordinator state log for a marker substring.
func waitForJournal(path, marker string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		if data, err := os.ReadFile(path); err == nil && strings.Contains(string(data), marker) {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("state log %s never recorded %s", path, marker)
}

// proc is one announced child process (worker daemon or coordinator): both
// log their resolved listener as msg=...listening addr=HOST:PORT.
type proc struct {
	cmd *exec.Cmd
	url string
}

var procSeq int

// startProc launches the binary, tees its stderr to <dir>/<role>-N.log for
// post-mortems (-keep), and waits for its listener announcement.
func startProc(log *slog.Logger, dir, role, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, err
	}
	procSeq++
	logPath := filepath.Join(dir, fmt.Sprintf("%s-%d.log", role, procSeq))
	lf, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		lf.Close()
		return nil, err
	}
	addrCh := make(chan string, 1)
	go func() {
		// Keep draining stderr for the process's lifetime so it never
		// blocks on a full pipe.
		defer lf.Close()
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(lf, line)
			if !strings.Contains(line, "listening") {
				continue
			}
			if m := addrRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p := &proc{cmd: cmd, url: "http://" + addr}
		log.Info("started", "role", role, "url", p.url)
		return p, nil
	case <-time.After(20 * time.Second):
		_ = cmd.Process.Kill()
		return nil, fmt.Errorf("%s never announced its listener", role)
	}
}

func (p *proc) kill() error {
	if p.cmd.Process == nil {
		return nil
	}
	err := p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
	return err
}

// term sends SIGTERM and waits for a clean exit within the budget.
func (p *proc) term(budget time.Duration) error {
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { _, err := p.cmd.Process.Wait(); done <- err }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("did not exit within %s of signal", budget)
	}
}

// waitExit waits for the process to finish and succeed.
func (p *proc) waitExit(budget time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(budget):
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("did not finish within %s", budget)
	}
}
