package main

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"dmafault/internal/campaign"
	"dmafault/internal/faultd/api"
	"dmafault/internal/faultdclient"
)

// Fleet soak (`make fleetsmoke`, soaksmoke -fleet): the fleet observability
// plane end-to-end. Three real workers, one coordinator with -fleetobs, and
// a mild netchaos plan on every worker-bound request — scrapes included, so
// the telemetry plane eats torn metrics bodies and 503d readiness probes
// while the campaign runs. Mid-run, GET /v1/fleet must show all three
// workers with nonzero per-phase latency attribution, and the fabrictop
// -once rendering of that snapshot must list them; after the run, the
// merged summary must be byte-identical to a clean single-node run —
// observation, even degraded observation, never touches the bytes.

// fleetPlanSpec keeps the weather mild: enough 503s, drops, and torn bodies
// to exercise the scrape loop's failure handling without making the
// campaign itself crawl through re-leases.
const (
	fleetPlanSpec = "http-503:0.05,conn-drop:0.03,truncate:0.03"
	fleetPlanSeed = "11"
)

func runFleetSoak(log *slog.Logger, keep bool) error {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "fleetsmoke-")
	if err != nil {
		return err
	}
	if keep {
		log.Info("keeping scratch dir", "dir", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	daemonBin := filepath.Join(dir, "dmafaultd")
	if out, err := exec.Command("go", "build", "-o", daemonBin, "./cmd/dmafaultd").CombinedOutput(); err != nil {
		return fmt.Errorf("build dmafaultd: %v\n%s", err, out)
	}
	campaignBin := filepath.Join(dir, "campaign")
	if out, err := exec.Command("go", "build", "-o", campaignBin, "./cmd/campaign").CombinedOutput(); err != nil {
		return fmt.Errorf("build campaign: %v\n%s", err, out)
	}
	topBin := filepath.Join(dir, "fabrictop")
	if out, err := exec.Command("go", "build", "-o", topBin, "./cmd/fabrictop").CombinedOutput(); err != nil {
		return fmt.Errorf("build fabrictop: %v\n%s", err, out)
	}

	// Stall scenarios keep every shard ~1s, so the campaign stays up long
	// enough for several scrape rounds and a mid-run /v1/fleet poll. 28 at
	// -shard-size 4 is 7 shards over 3 workers: everyone executes.
	setPath := filepath.Join(dir, "set.json")
	f, err := os.Create(setPath)
	if err != nil {
		return err
	}
	if err := campaign.SaveScenarios(f, stallScenarios(28)); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// The byte-identity oracle: a clean single-node run, no fabric, no chaos,
	// no fleet plane.
	singlePath := filepath.Join(dir, "single.json")
	if out, err := exec.Command(campaignBin,
		"-scenarios", setPath, "-out", singlePath, "-quiet").CombinedOutput(); err != nil {
		return fmt.Errorf("single-node reference run: %v\n%s", err, out)
	}

	var urls []string
	for i := 1; i <= 3; i++ {
		w, err := startProc(log, dir, "worker", daemonBin,
			"-addr", "127.0.0.1:0", "-workers", "1",
			"-max-concurrent-campaigns", "2", "-job-stall-timeout", "1m")
		if err != nil {
			return err
		}
		defer w.kill()
		urls = append(urls, w.url)
	}
	if err := preflightWorkers(ctx, urls, 10*time.Second); err != nil {
		return err
	}

	fabricPath := filepath.Join(dir, "fabric.json")
	coord, err := startProc(log, dir, "coordinator", campaignBin,
		"-coordinator", "-scenarios", setPath,
		"-worker-urls", strings.Join(urls, ","),
		"-coordinator-addr", "127.0.0.1:0",
		"-shard-size", "4", "-lease-ttl", "20s", "-lease-attempts", "6",
		"-fabric-heartbeat", "200ms",
		"-netchaos", fleetPlanSpec, "-netchaos-seed", fleetPlanSeed,
		"-fleetobs", "-fleet-interval", "150ms",
		"-out", fabricPath,
	)
	if err != nil {
		return err
	}
	defer coord.kill()

	// Poll /v1/fleet while the campaign runs until every worker shows
	// attributed per-phase time, then render the same state through the
	// fabrictop binary. The poll races campaign completion, so failures here
	// are retried until the coordinator exits.
	fleetErr := make(chan error, 1)
	go func() { fleetErr <- watchFleet(ctx, log, coord.url, topBin, urls) }()

	exitErr := make(chan error, 1)
	go func() { exitErr <- coord.waitExit(3 * time.Minute) }()

	select {
	case err := <-fleetErr:
		if err != nil {
			return err
		}
		if err := <-exitErr; err != nil {
			return fmt.Errorf("coordinator: %w", err)
		}
	case err := <-exitErr:
		if err != nil {
			return fmt.Errorf("coordinator: %w", err)
		}
		// The campaign finished before the fleet assertions did: the
		// coordinator's surface is gone, so whatever the watcher saw last is
		// the verdict.
		if err := <-fleetErr; err != nil {
			return fmt.Errorf("campaign finished before the fleet plane converged: %w", err)
		}
	}

	single, err := os.ReadFile(singlePath)
	if err != nil {
		return err
	}
	fab, err := os.ReadFile(fabricPath)
	if err != nil {
		return fmt.Errorf("fabric summary: %w", err)
	}
	if !bytes.Equal(single, fab) {
		return fmt.Errorf("fleetobs fabric summary differs from clean single-node run (%d vs %d bytes); kept at %s / %s",
			len(fab), len(single), fabricPath, singlePath)
	}
	log.Info("fleet soak finished", "workers", len(urls), "summary_bytes", len(fab))
	return nil
}

// watchFleet polls the coordinator's /v1/fleet until all three workers carry
// nonzero per-phase latency totals, then checks the fabrictop -once
// rendering. Returns the last observation error if the surface disappears
// (coordinator exit) before converging.
func watchFleet(ctx context.Context, log *slog.Logger, coordURL, topBin string, workers []string) error {
	cl := faultdclient.New(coordURL)
	cl.Retries = -1 // the poll loop is its own retry
	deadline := time.Now().Add(3 * time.Minute)
	lastErr := fmt.Errorf("never observed a fleet snapshot")
	for time.Now().Before(deadline) {
		fs, err := cl.Fleet(ctx)
		if err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		if err := fleetConverged(fs, workers); err != nil {
			lastErr = err
			time.Sleep(100 * time.Millisecond)
			continue
		}
		log.Info("fleet converged: all workers attributed", "workers", len(fs.Workers))
		out, err := exec.Command(topBin, "-coordinator", coordURL, "-once").CombinedOutput()
		if err != nil {
			return fmt.Errorf("fabrictop -once: %v\n%s", err, out)
		}
		for _, u := range workers {
			host := strings.TrimPrefix(u, "http://")
			if !strings.Contains(string(out), host) {
				return fmt.Errorf("fabrictop -once output missing worker %s:\n%s", host, out)
			}
		}
		return nil
	}
	return lastErr
}

// fleetConverged checks one snapshot for full three-worker attribution.
func fleetConverged(fs *api.FleetSnapshot, workers []string) error {
	if len(fs.Workers) != len(workers) {
		return fmt.Errorf("fleet shows %d workers, want %d", len(fs.Workers), len(workers))
	}
	for _, w := range fs.Workers {
		if w.Delivered == 0 {
			return fmt.Errorf("worker %s has delivered nothing yet", w.URL)
		}
		pt := w.PhaseTotals
		if pt.QueueWait <= 0 || pt.Execute <= 0 || pt.Publish <= 0 {
			return fmt.Errorf("worker %s phase totals not all nonzero: %+v", w.URL, pt)
		}
	}
	return nil
}
