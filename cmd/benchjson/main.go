// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact for machine comparison across commits (benchstat consumes
// the same lines; the JSON carries them verbatim alongside parsed metrics).
// It tees: the raw benchmark text passes through to stdout unchanged, so it
// can sit in a pipeline without hiding results.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -out BENCH.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("out", "", "write the JSON artifact to this file (default stdout-only parse check)")
	flag.Parse()

	doc, err := parse(io.TeeReader(os.Stdin, os.Stdout))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks -> %s\n", len(doc.Benchmarks), *out)
}
