package main

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Document is the JSON artifact: environment lines, one record per
// benchmark result line, and the raw lines for benchstat replay.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw holds the benchmark result lines verbatim — feed them to
	// benchstat to compare two artifacts.
	Raw []string `json:"raw"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name keeps the -cpu suffix (e.g. "BenchmarkMapUnmapStrict-8"):
	// results at different GOMAXPROCS are different benchmarks.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op", and any
	// custom testing.B metrics.
	Metrics map[string]float64 `json:"metrics"`
}

// parse scans `go test -bench` output. Unknown lines (PASS, ok, test logs)
// are ignored; malformed Benchmark lines are an error rather than a silent
// gap, so a truncated run cannot masquerade as a comparison baseline.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{Benchmarks: []Benchmark{}, Raw: []string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue // a log line that happens to start with "Benchmark"
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
			doc.Raw = append(doc.Raw, line)
		}
	}
	return doc, sc.Err()
}

// parseBenchLine parses "BenchmarkName-8  100  123 ns/op  45 B/op ...".
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad metric value in %q: %w", line, err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, true, nil
}
