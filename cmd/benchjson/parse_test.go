package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: dmafault
cpu: Example CPU @ 2.40GHz
BenchmarkMapUnmapStrict-8   	  504223	      2304 ns/op	     368 B/op	       9 allocs/op
BenchmarkIOTLBTranslate-8   	12159690	        98.61 ns/op	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkSomething-8
    bench_test.go:10: a log line
PASS
ok  	dmafault	12.345s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "dmafault" {
		t.Fatalf("env: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 || len(doc.Raw) != 2 {
		t.Fatalf("parsed %d benchmarks, %d raw lines, want 2 and 2", len(doc.Benchmarks), len(doc.Raw))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkMapUnmapStrict-8" || b.Iterations != 504223 {
		t.Fatalf("first bench: %+v", b)
	}
	if b.Metrics["ns/op"] != 2304 || b.Metrics["B/op"] != 368 || b.Metrics["allocs/op"] != 9 {
		t.Fatalf("metrics: %+v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics["ns/op"] != 98.61 {
		t.Fatalf("float metric: %+v", doc.Benchmarks[1].Metrics)
	}
}

func TestParseIgnoresNonBenchLines(t *testing.T) {
	doc, err := parse(strings.NewReader("BenchmarkOddFieldCount-8 100 5 ns/op extra\nPASS\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("malformed line parsed: %+v", doc.Benchmarks)
	}
}
