// Command dkasan boots the simulated machine with the D-KASAN sanitizer
// attached (§4.2), drives the build+ping victim workload, and prints the
// Fig. 3-style exposure report.
package main

import (
	"flag"
	"fmt"
	"os"

	"dmafault/internal/core"
	"dmafault/internal/dkasan"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/workload"
)

func main() {
	iterations := flag.Int("iterations", 16, "build+ping workload rounds")
	seed := flag.Int64("seed", 2021, "boot seed")
	strict := flag.Bool("strict", false, "use strict IOTLB invalidation")
	flag.Parse()

	mode := iommu.Deferred
	if *strict {
		mode = iommu.Strict
	}
	dk := dkasan.New()
	sys, err := core.NewSystem(core.Config{Seed: *seed, KASLR: true, Mode: mode, Tracer: dk})
	if err != nil {
		fatal(err)
	}
	dk.Attach(sys.Mem, sys.Mapper)
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		fatal(err)
	}
	res, err := workload.Run(sys, nic, workload.Config{Iterations: *iterations, NICDevice: 1})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %d build rounds, %d pings, %d kernel objects allocated (IOMMU %s)\n\n",
		res.Builds, res.Pings, res.ObjectsAlloced, mode)
	fmt.Print(dk.Render())
	st := dk.Stats()
	fmt.Printf("\nraw events: alloc-after-map=%d map-after-alloc=%d access-after-map=%d multiple-map=%d\n",
		st.AllocAfterMap, st.MapAfterAlloc, st.AccessAfterMap, st.MultipleMap)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dkasan: %v\n", err)
	os.Exit(1)
}
