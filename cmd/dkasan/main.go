// Command dkasan boots the simulated machine with the D-KASAN sanitizer
// attached (§4.2), drives the build+ping victim workload, and prints the
// Fig. 3-style exposure report.
package main

import (
	"flag"
	"fmt"

	"dmafault/internal/cliutil"
	"dmafault/internal/core"
	"dmafault/internal/dkasan"
	"dmafault/internal/netstack"
	"dmafault/internal/workload"
)

func main() {
	iterations := flag.Int("iterations", 16, "build+ping workload rounds")
	cf := cliutil.New("dkasan").WithSeed().WithStrict().WithLog()
	cf.Parse()
	log := cf.Logger(nil)
	log.Debug("dkasan boot", "seed", *cf.Seed, "iterations", *iterations, "mode", cf.Mode().String())

	mode := cf.Mode()
	dk := dkasan.New()
	sys, err := core.New(core.WithSeed(*cf.Seed), core.WithIOMMUMode(mode), core.WithTracer(dk))
	if err != nil {
		cf.Fatal(err)
	}
	dk.Attach(sys.Mem, sys.Mapper)
	nic, err := sys.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		cf.Fatal(err)
	}
	res, err := workload.Run(sys, nic, workload.Config{Iterations: *iterations, NICDevice: 1})
	if err != nil {
		cf.Fatal(err)
	}
	fmt.Printf("workload: %d build rounds, %d pings, %d kernel objects allocated (IOMMU %s)\n\n",
		res.Builds, res.Pings, res.ObjectsAlloced, mode)
	fmt.Print(dk.Render())
	st := dk.Stats()
	fmt.Printf("\nraw events: alloc-after-map=%d map-after-alloc=%d access-after-map=%d multiple-map=%d\n",
		st.AllocAfterMap, st.MapAfterAlloc, st.AccessAfterMap, st.MultipleMap)
}
