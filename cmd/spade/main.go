// Command spade runs the SPADE static analyzer (§4.1): it scans driver C
// sources for dma_map* calls, backtracks the mapped buffers, and reports
// exposed data structures and callback pointers.
//
// Usage:
//
//	spade                  # analyze the built-in Linux-5.0-calibrated corpus
//	spade -dir path/       # analyze every .c file under a directory
//	spade -trace file.c    # print the Fig. 2-style trace for one file
//	spade -curated         # analyze the curated nvme_fc / i40e sources
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"dmafault/internal/cliutil"
	"dmafault/internal/cminor"
	"dmafault/internal/corpus"
	"dmafault/internal/spade"
)

func main() {
	dir := flag.String("dir", "", "directory of .c files to analyze (default: built-in corpus)")
	trace := flag.String("trace", "", "print the recursive trace for this file (path as analyzed)")
	curated := flag.Bool("curated", false, "analyze the curated nvme_fc/i40e sources instead of the corpus")
	depth := flag.Int("depth", 4, "cross-function backtracking depth limit")
	cf := cliutil.New("spade").WithJSON().WithLog()
	cf.Parse()
	log := cf.Logger(nil)

	files, err := loadSources(*dir, *curated)
	if err != nil {
		cf.Fatal(err)
	}
	log.Debug("corpus loaded", "files", len(files), "depth", *depth, "curated", *curated)
	an := spade.NewAnalyzer(files)
	an.MaxDepth = *depth
	rep := an.Run()
	if *cf.JSON {
		out, err := rep.JSON()
		if err != nil {
			cf.Fatal(err)
		}
		os.Stdout.Write(out)
		fmt.Println()
		return
	}
	if *trace != "" {
		fmt.Print(rep.TraceFor(*trace))
		return
	}
	fmt.Print(rep.Table())
	fmt.Printf("\nfindings with exposed callbacks:\n")
	n := 0
	for _, f := range rep.Findings {
		if f.CallbacksExposed() && n < 10 {
			fmt.Printf("  %s:%d (%s): struct %s — %d direct, %d spoofable\n",
				f.File, f.Line, f.Func, f.ExposedStruct, f.DirectCallbacks, f.SpoofableCallbacks)
			n++
		}
	}
	if n == 10 {
		fmt.Printf("  ... (use -trace FILE for details)\n")
	}
}

func loadSources(dir string, curated bool) ([]*cminor.File, error) {
	var srcs []corpus.SourceFile
	switch {
	case curated:
		srcs = corpus.Curated()
	case dir != "":
		err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".c") {
				return err
			}
			content, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			srcs = append(srcs, corpus.SourceFile{Name: path, Content: string(content)})
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(srcs) == 0 {
			return nil, fmt.Errorf("no .c files under %s", dir)
		}
	default:
		srcs = corpus.Generate(corpus.Linux50)
	}
	var out []*cminor.File
	for _, sf := range srcs {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}
