// Command dmafaultd serves the campaign engine over HTTP: submit scenario
// sets as jobs, poll their progress, and scrape the unified metric surface
// in Prometheus text format.
//
// Usage:
//
//	dmafaultd                     # listen on :8077
//	dmafaultd -addr 127.0.0.1:9000 -workers 8
//
//	curl -s localhost:8077/healthz
//	curl -s -X POST localhost:8077/campaigns -d '{"preset":"ladder","n":8,"seed":2021}'
//	curl -s localhost:8077/campaigns/1 | head
//	curl -s localhost:8077/metrics | grep iommu_
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"dmafault/internal/cliutil"
	"dmafault/internal/faultd"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	cf := cliutil.New("dmafaultd").WithWorkers().WithQuiet()
	cf.Parse()

	srv := faultd.NewServer()
	srv.Workers = *cf.Workers
	if !*cf.Quiet {
		fmt.Fprintf(os.Stderr, "dmafaultd: listening on %s (POST /campaigns, GET /metrics, /healthz, /debug/pprof)\n", *addr)
	}
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		cf.Fatal(err)
	}
}
