// Command dmafaultd serves the campaign engine over HTTP: submit scenario
// sets as jobs, poll their progress, cancel them, and scrape the unified
// metric surface in Prometheus text format.
//
// The job plane is supervised: submissions pass admission control into a
// bounded FIFO queue (-queue-depth; 429 + Retry-After when full) and at
// most -max-concurrent-campaigns jobs execute at once; a watchdog cancels
// jobs whose progress stalls past -job-stall-timeout; scenarios that
// repeatedly panic or blow their deadline across jobs are quarantined by a
// circuit breaker (-quarantine-threshold / -quarantine-probe-after); and
// with -journal-dir set, a restart scans the directory and resumes every
// interrupted job with a byte-identical final summary. SIGTERM/SIGINT
// trigger a graceful shutdown: the listener closes, new submissions get
// 503, running jobs drain (cancelled if the -shutdown-timeout expires
// first), and journals are flushed.
//
// With -cache-dir set, the daemon opens a shared content-addressed result
// store (internal/resultstore) at <dir>/results.bin: every campaign job,
// recovered resume, and fuzz batch consults it before executing a scenario,
// so overlapping submissions replay recorded results instead of
// re-executing. The store persists across restarts; /v1/cache/stats reports
// it and DELETE /v1/cache empties it.
//
// Usage:
//
//	dmafaultd                     # listen on :8077
//	dmafaultd -addr 127.0.0.1:9000 -workers 8 -journal-dir /var/lib/dmafaultd \
//	          -cache-dir /var/cache/dmafaultd
//
//	curl -s localhost:8077/healthz
//	curl -s localhost:8077/readyz
//	curl -s -X POST localhost:8077/v1/campaigns -d '{"preset":"ladder","n":8,"seed":2021}'
//	curl -s localhost:8077/v1/campaigns/1 | head
//	curl -s -X DELETE localhost:8077/v1/campaigns/1
//	curl -s localhost:8077/v1/cache/stats
//	curl -s localhost:8077/metrics | grep iommu_
package main

import (
	"context"
	"errors"
	"flag"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"dmafault/internal/cliutil"
	"dmafault/internal/fabric"
	"dmafault/internal/faultd"
	"dmafault/internal/obs"
	"dmafault/internal/resultstore"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second,
		"on SIGTERM/SIGINT, how long to drain in-flight requests and jobs before cancelling them")
	journalDir := flag.String("journal-dir", "",
		"directory for per-job campaign journals (job-<id>.jsonl); scanned at boot to resume interrupted jobs; empty disables journaling")
	maxConcurrent := flag.Int("max-concurrent-campaigns", 4,
		"how many campaign jobs may execute at once; further accepted jobs queue (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", faultd.DefaultQueueDepth,
		"bound on the pending-job queue; submissions beyond it get 429 with Retry-After")
	stallTimeout := flag.Duration("job-stall-timeout", 2*time.Minute,
		"cancel a running job whose progress heartbeat goes quiet for this long (0 disables the watchdog)")
	quarantineThreshold := flag.Int("quarantine-threshold", 3,
		"quarantine a scenario after this many panic/timeout outcomes across jobs (0 disables the circuit breaker)")
	quarantineProbeAfter := flag.Int("quarantine-probe-after", 2,
		"jobs a quarantined scenario sits out before a half-open probe run")
	cacheDir := flag.String("cache-dir", "",
		"directory for the shared content-addressed result cache (results.bin); jobs replay cached scenario results instead of re-executing; empty disables caching")
	join := flag.String("join", "",
		"fabric coordinator base URL to register with (e.g. http://127.0.0.1:9100); the daemon re-announces itself on -join-interval")
	advertise := flag.String("advertise", "",
		"base URL workers should be reached at by the coordinator; empty derives it from the resolved listen address")
	joinInterval := flag.Duration("join-interval", fabric.DefaultJoinInterval,
		"how often to re-announce to the -join coordinator")
	cf := cliutil.New("dmafaultd").WithWorkers().WithQuiet().WithLog()
	cf.Parse()

	// The flight recorder sees every record regardless of console level; its
	// retained window is what the supervisor dumps on stall, panic,
	// quarantine trip, and SIGTERM.
	rec := obs.NewRecorder(0)
	log := cf.Logger(rec)

	srv := faultd.NewServer()
	srv.Log = log
	srv.Recorder = rec
	srv.Workers = *cf.Workers
	srv.JournalDir = *journalDir
	srv.MaxConcurrent = *maxConcurrent
	srv.QueueDepth = *queueDepth
	srv.StallTimeout = *stallTimeout
	srv.QuarantineThreshold = *quarantineThreshold
	srv.QuarantineProbeAfter = *quarantineProbeAfter

	if *cacheDir != "" {
		if err := os.MkdirAll(*cacheDir, 0o755); err != nil {
			cf.Fatal(err)
		}
		store, err := resultstore.Open(filepath.Join(*cacheDir, "results.bin"))
		if err != nil {
			cf.Fatal(err)
		}
		defer store.Close()
		srv.Cache = store
		st := store.Stats()
		log.Info("result cache open", "path", st.Path,
			"records", st.Records, "stale", st.StaleRecords, "bytes", st.Bytes)
	}

	// Resume whatever a crashed or killed predecessor left behind, before
	// the listener opens: recovered jobs are queued jobs like any other.
	if *journalDir != "" {
		recovered, err := srv.RecoverJobs()
		if err != nil {
			log.Error("journal recovery failed", "err", err, "journal_dir", *journalDir)
		}
		if recovered > 0 {
			log.Info("resumed interrupted jobs", "jobs", recovered, "journal_dir", *journalDir)
		}
	}

	// Bind before announcing: "listening on" is only printed once the
	// listener actually exists, and a bind failure exits nonzero.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cf.Fatal(err)
	}
	// soaksmoke parses this record (msg=listening, addr=...) to find the
	// resolved ephemeral port — keep the message and the addr key stable.
	log.Info("listening",
		"addr", ln.Addr().String(),
		"queue_depth", *queueDepth,
		"max_concurrent", *maxConcurrent,
		"journal_dir", *journalDir)

	// Announce this worker to its fabric coordinator for as long as the
	// process lives; shutdown stops the loop, and the coordinator's
	// heartbeat (plus the lease-aware /readyz refusing new shards once the
	// drain begins) handles the rest.
	joinCtx, stopJoin := context.WithCancel(context.Background())
	defer stopJoin()
	if *join != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(ln.Addr().String())
		}
		go fabric.JoinLoop(joinCtx, *join, adv, *joinInterval, log)
	}

	hs := &http.Server{Handler: srv.Handler()}
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		stopJoin()
		log.Info("shutting down", "drain_deadline", shutdownTimeout.String())
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Stop accepting, finish in-flight requests, then drain (or cancel)
		// running jobs so their journals record every completed scenario.
		if err := hs.Shutdown(ctx); err != nil {
			log.Error("http shutdown", "err", err)
		}
		if err := srv.Drain(ctx); err != nil {
			log.Warn("drain deadline expired, cancelled remaining jobs", "err", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cf.Fatal(err)
	}
	<-idle
}

// advertiseURL derives a dialable base URL from the resolved listen
// address: an unspecified host (":8077", "[::]:8077") becomes loopback —
// the single-host default; multi-host fabrics pass -advertise explicitly.
func advertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}
