// Command dmafaultd serves the campaign engine over HTTP: submit scenario
// sets as jobs, poll their progress, cancel them, and scrape the unified
// metric surface in Prometheus text format. SIGTERM/SIGINT trigger a
// graceful shutdown: the listener closes, running jobs drain (cancelled if
// the -shutdown-timeout expires first), and journals are flushed.
//
// Usage:
//
//	dmafaultd                     # listen on :8077
//	dmafaultd -addr 127.0.0.1:9000 -workers 8 -journal-dir /var/lib/dmafaultd
//
//	curl -s localhost:8077/healthz
//	curl -s -X POST localhost:8077/campaigns -d '{"preset":"ladder","n":8,"seed":2021}'
//	curl -s localhost:8077/campaigns/1 | head
//	curl -s -X DELETE localhost:8077/campaigns/1
//	curl -s localhost:8077/metrics | grep iommu_
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmafault/internal/cliutil"
	"dmafault/internal/faultd"
)

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	shutdownTimeout := flag.Duration("shutdown-timeout", 30*time.Second,
		"on SIGTERM/SIGINT, how long to drain in-flight requests and jobs before cancelling them")
	journalDir := flag.String("journal-dir", "",
		"directory for per-job campaign journals (job-<id>.jsonl); empty disables journaling")
	cf := cliutil.New("dmafaultd").WithWorkers().WithQuiet()
	cf.Parse()

	srv := faultd.NewServer()
	srv.Workers = *cf.Workers
	srv.JournalDir = *journalDir

	// Bind before announcing: "listening on" is only printed once the
	// listener actually exists, and a bind failure exits nonzero.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cf.Fatal(err)
	}
	if !*cf.Quiet {
		fmt.Fprintf(os.Stderr, "dmafaultd: listening on %s (POST /campaigns, GET /metrics, /healthz, /debug/pprof)\n", ln.Addr())
	}

	hs := &http.Server{Handler: srv.Handler()}
	idle := make(chan struct{})
	go func() {
		defer close(idle)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		<-sig
		if !*cf.Quiet {
			fmt.Fprintf(os.Stderr, "dmafaultd: shutting down (draining up to %s)\n", *shutdownTimeout)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		// Stop accepting, finish in-flight requests, then drain (or cancel)
		// running jobs so their journals record every completed scenario.
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dmafaultd: shutdown: %v\n", err)
		}
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dmafaultd: drain: cancelled remaining jobs (%v)\n", err)
		}
	}()

	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cf.Fatal(err)
	}
	<-idle
}
