// Package dmafault is a full-system reproduction, in pure Go, of
// "Characterizing, Exploiting, and Detecting DMA Code Injection
// Vulnerabilities in the Presence of an IOMMU" (Markuze et al., EuroSys '21).
//
// The repository simulates the victim machine end to end — physical memory
// and the kernel allocators (buddy, SLUB, page_frag), the KASLR'd virtual
// layout, a VT-d-style IOMMU with strict/deferred invalidation, the DMA API,
// an NX/ROP/JOP kernel-execution model, and the slice of the Linux network
// stack the paper's attacks live in — and implements on top of it:
//
//   - the SPADE static analyzer with a C front end and a Linux-5.0-calibrated
//     driver corpus (Table 2, Fig. 2);
//   - the D-KASAN runtime sanitizer and its victim workload (Fig. 3);
//   - the single-step baseline attack and the three compound attacks:
//     RingFlood (§5.3), Poisoned TX (§5.4) and Forward Thinking (§5.5),
//     including the arbitrary-page-read surveillance variant;
//   - an experiments harness regenerating every table and figure
//     (internal/experiments, cmd/experiments, bench_test.go).
//
// Entry points: internal/core.System boots a machine; the examples/ mains
// show typical use; DESIGN.md maps paper artifacts to modules; EXPERIMENTS.md
// records paper-vs-measured outcomes.
package dmafault
