package dmafault

// One benchmark per table and figure of the paper, each regenerating the
// artifact through internal/experiments, plus micro-benchmarks for the
// performance claims (§5.2.1 invalidation costs) and the hot substrate
// operations. Run with: go test -bench=. -benchmem
//
// Absolute numbers are simulator numbers; the benchmarks assert the *shape*
// (who wins, by what factor) via each experiment's OK flag.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dmafault/internal/attacks"
	"dmafault/internal/campaign"
	"dmafault/internal/cminor"
	"dmafault/internal/core"
	"dmafault/internal/corpus"
	"dmafault/internal/dma"
	"dmafault/internal/experiments"
	"dmafault/internal/fabric"
	"dmafault/internal/faultd"
	"dmafault/internal/fuzz"
	"dmafault/internal/iommu"
	"dmafault/internal/netstack"
	"dmafault/internal/obs"
	"dmafault/internal/resultstore"
	"dmafault/internal/spade"
)

// benchCfg keeps per-iteration work bounded; Sec53's full 256-boot study has
// its own dedicated benchmark below.
var benchCfg = experiments.Config{BootTrials: 12, CampaignAttempts: 3, Seed: 2021}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		o, err := experiments.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if !o.OK {
			b.Fatalf("experiment %s did not reproduce the paper's claim:\n%s", id, o.Render())
		}
	}
}

func BenchmarkTable1_MemoryLayout(b *testing.B)      { runExperiment(b, "T1") }
func BenchmarkTable2_SPADE(b *testing.B)             { runExperiment(b, "T2") }
func BenchmarkFigure1_SubPageTypes(b *testing.B)     { runExperiment(b, "F1") }
func BenchmarkFigure2_SpadeTrace(b *testing.B)       { runExperiment(b, "F2") }
func BenchmarkFigure3_DKASAN(b *testing.B)           { runExperiment(b, "F3") }
func BenchmarkFigure4_SharedInfoAttack(b *testing.B) { runExperiment(b, "F4") }
func BenchmarkFigure5_PageFrag(b *testing.B)         { runExperiment(b, "F5") }
func BenchmarkFigure6_InvalidationWindow(b *testing.B) {
	runExperiment(b, "F6")
}
func BenchmarkFigure7_TimeWindows(b *testing.B)     { runExperiment(b, "F7") }
func BenchmarkFigure8_PoisonedTX(b *testing.B)      { runExperiment(b, "F8") }
func BenchmarkFigure9_ForwardThinking(b *testing.B) { runExperiment(b, "F9") }
func BenchmarkSec24_KASLRBreak(b *testing.B)        { runExperiment(b, "S2.4") }
func BenchmarkSec521_InvalidationCost(b *testing.B) { runExperiment(b, "S5.2.1") }
func BenchmarkSec53_RingFlood(b *testing.B)         { runExperiment(b, "S5.3") }
func BenchmarkSec6_EndToEnd(b *testing.B)           { runExperiment(b, "S6") }
func BenchmarkSec7_Mitigations(b *testing.B)        { runExperiment(b, "S7") }

// --- micro-benchmarks for the substrate operations the claims rest on ---

func newBenchSystem(b *testing.B, mode iommu.Mode) *core.System {
	b.Helper()
	sys, err := core.NewSystem(core.Config{Seed: 1, KASLR: true, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.IOMMU.CreateDomain("nic", 1); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkMapUnmapStrict/Deferred expose the §5.2.1 trade-off directly: the
// deferred mode exists because strict invalidation costs ~2000 cycles per
// unmap on the virtual clock (host-time difference shows the bookkeeping
// cost; virtual-time difference is asserted by Sec521).
func BenchmarkMapUnmapStrict(b *testing.B)   { benchMapUnmap(b, iommu.Strict) }
func BenchmarkMapUnmapDeferred(b *testing.B) { benchMapUnmap(b, iommu.Deferred) }

func benchMapUnmap(b *testing.B, mode iommu.Mode) {
	sys := newBenchSystem(b, mode)
	buf, err := sys.Mem.Slab.Kmalloc(0, 2048, "bench")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va, err := sys.Mapper.MapSingle(1, buf, 2048, dma.FromDevice)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Mapper.UnmapSingle(1, va, 2048, dma.FromDevice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIOTLBTranslate(b *testing.B) {
	sys := newBenchSystem(b, iommu.Strict)
	buf, _ := sys.Mem.Slab.Kmalloc(0, 2048, "bench")
	va, err := sys.Mapper.MapSingle(1, buf, 2048, dma.FromDevice)
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Bus.Write(1, va, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKmallocKfree(b *testing.B) {
	sys := newBenchSystem(b, iommu.Strict)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := sys.Mem.Slab.Kmalloc(0, 512, "bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Mem.Slab.Kfree(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageFragAlloc(b *testing.B) {
	sys := newBenchSystem(b, iommu.Strict)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := sys.Mem.Frag.Alloc(0, 2048, 64)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Mem.Frag.Free(0, a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBounceMapper quantifies the copy tax of the [47] mitigation
// relative to BenchmarkMapUnmapStrict.
func BenchmarkBounceMapper(b *testing.B) {
	sys := newBenchSystem(b, iommu.Strict)
	bm := dma.NewBounceMapper(sys.Mem, sys.Mapper)
	buf, _ := sys.Mem.Slab.Kmalloc(0, 2048, "bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va, err := bm.MapSingle(1, buf, 1500, dma.Bidirectional)
		if err != nil {
			b.Fatal(err)
		}
		if err := bm.UnmapSingle(1, va, 1500, dma.Bidirectional); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBouncePool is the static-mapping variant of [47]: compare with
// BenchmarkBounceMapper (per-I/O map+copy) and BenchmarkMapUnmapStrict
// (zero-copy, per-I/O map): the pool trades pinned memory for the cheapest
// per-I/O cost of the three at equal security.
func BenchmarkBouncePool(b *testing.B) {
	sys := newBenchSystem(b, iommu.Strict)
	pool, err := dma.NewBouncePool(sys.Mem, sys.Mapper, 1, 8)
	if err != nil {
		b.Fatal(err)
	}
	buf, _ := sys.Mem.Slab.Kmalloc(0, 1500, "io")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va, err := pool.Map(buf, 1500, dma.Bidirectional)
		if err != nil {
			b.Fatal(err)
		}
		if err := pool.Unmap(va, 1500, dma.Bidirectional); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRXPathPerPacket(b *testing.B) {
	sys := newBenchSystem(b, iommu.Deferred)
	nic, err := sys.Net.AddNIC(1, netstack.DriverI40E, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := nic.FillRX(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(nic.RXRing())
		if !nic.RXRing()[slot].Ready {
			b.StopTimer()
			if err := nic.FillRX(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		d := nic.RXRing()[slot]
		if err := sys.Bus.Write(1, d.IOVA, []byte("pkt")); err != nil {
			b.Fatal(err)
		}
		if err := nic.ReceiveOn(slot, 3, netstack.ProtoUDP, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpadeFullCorpus(b *testing.B) {
	var parsed []*cminor.File
	for _, sf := range corpus.Generate(corpus.Linux50) {
		f, err := cminor.Parse(sf.Name, sf.Content)
		if err != nil {
			b.Fatal(err)
		}
		parsed = append(parsed, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := spade.NewAnalyzer(parsed).Run()
		if rep.TotalCalls != 1019 {
			b.Fatal("corpus drift")
		}
	}
}

func BenchmarkBootOnce(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := attacks.BootOnce(attacks.Kernel50, int64(i), 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaignThroughput measures scenarios/sec through the campaign
// engine at several pool sizes. Scenarios are embarrassingly parallel
// (isolated simulated machines), so on a multi-core host throughput should
// scale with workers until it hits the core count; the summary stays
// byte-identical regardless (campaign package tests assert that).
func BenchmarkCampaignThroughput(b *testing.B) {
	set := campaign.MixedPreset(8, 2021)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := campaign.Engine{Workers: workers}
				sum, err := eng.Run(set)
				if err != nil {
					b.Fatal(err)
				}
				if sum.Scenarios != len(set) {
					b.Fatalf("ran %d scenarios, want %d", sum.Scenarios, len(set))
				}
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkCampaignMetricsOverhead measures what the unified metrics layer
// costs on campaign throughput: the same scenario set with metric capture
// (registry attached at boot, per-scenario Gather, order-stable merge) vs
// the SkipMetrics ablation. The acceptance budget is <5% — subsystems keep
// plain stats structs on their hot paths and pay only one Gather per
// scenario, so the delta should sit in the noise (numbers recorded in
// EXPERIMENTS.md).
func BenchmarkCampaignMetricsOverhead(b *testing.B) {
	set := campaign.MixedPreset(8, 2021)
	for _, arm := range []struct {
		name string
		skip bool
	}{{"metrics=on", false}, {"metrics=off", true}} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := campaign.Engine{Workers: 4, SkipMetrics: arm.skip}
				sum, err := eng.Run(set)
				if err != nil {
					b.Fatal(err)
				}
				if !arm.skip && sum.Metrics.Total("iommu_maps_total") == 0 {
					b.Fatal("metrics arm captured nothing")
				}
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkCampaignObsOverhead measures what wall-clock span tracing costs
// on campaign throughput: the same scenario set with a tracer fanning out to
// the two sinks dmafaultd attaches (the histogram summarizer and the flight
// recorder) vs the nil tracer. Each scenario mints a scenario span, one
// attempt span per attempt, and shares one campaign root — a handful of
// time.Now calls, map copies, and ring appends per scenario. The acceptance
// budget is <5%; numbers are recorded in EXPERIMENTS.md.
func BenchmarkCampaignObsOverhead(b *testing.B) {
	set := campaign.MixedPreset(8, 2021)
	for _, arm := range []struct {
		name   string
		tracer func() *obs.Tracer
	}{
		{"obs=off", func() *obs.Tracer { return nil }},
		{"obs=on", func() *obs.Tracer {
			return obs.NewTracer(obs.NewSpanMetrics().Sink(), obs.NewRecorder(0).SpanSink())
		}},
	} {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := campaign.Engine{Workers: 4, Obs: arm.tracer()}
				sum, err := eng.Run(set)
				if err != nil {
					b.Fatal(err)
				}
				if sum.Scenarios != len(set) {
					b.Fatalf("ran %d scenarios, want %d", sum.Scenarios, len(set))
				}
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkCampaignHardeningOverhead measures what the hardened execution
// layer costs on a clean (no injected faults) campaign: the panic-isolation
// goroutine per attempt, the context plumbing, the nil-injector checks on
// every DMA write / translation / refill / allocation, and optionally the
// JSONL journal append per scenario. The acceptance budget is <5% vs the
// pre-hardening engine — the guards are a goroutine spawn and a handful of
// nil checks per scenario, and the journal is one buffered write. Numbers
// are recorded in EXPERIMENTS.md.
func BenchmarkCampaignHardeningOverhead(b *testing.B) {
	set := campaign.MixedPreset(8, 2021)
	for _, arm := range []struct {
		name    string
		journal bool
	}{{"journal=off", false}, {"journal=on", true}} {
		b.Run(arm.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				eng := campaign.Engine{Workers: 4}
				if arm.journal {
					j, err := campaign.OpenJournal(
						filepath.Join(dir, fmt.Sprintf("bench-%d.jsonl", i)), set, false)
					if err != nil {
						b.Fatal(err)
					}
					eng.Journal = j
				}
				sum, err := eng.Run(set)
				if eng.Journal != nil {
					eng.Journal.Close()
				}
				if err != nil {
					b.Fatal(err)
				}
				if sum.Scenarios != len(set) {
					b.Fatalf("ran %d scenarios, want %d", sum.Scenarios, len(set))
				}
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkCampaignCacheHit quantifies what the content-addressed result
// cache buys an incremental re-run: the same ladder set executed cold (the
// store is empty, every scenario runs and records) vs warm (a prior run
// filled the store, every scenario replays). The warm arm's speedup is the
// whole point of internal/resultstore — re-running an unchanged campaign
// should cost I/O and hashing, not simulation.
func BenchmarkCampaignCacheHit(b *testing.B) {
	set := campaign.LadderPreset(16, 2021)
	for _, arm := range []struct {
		name string
		warm bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(arm.name, func(b *testing.B) {
			dir := b.TempDir()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st, err := resultstore.Open(filepath.Join(dir, fmt.Sprintf("r%d.bin", i)))
				if err != nil {
					b.Fatal(err)
				}
				if arm.warm {
					if _, err := (campaign.Engine{Workers: 4, Cache: st}).Run(set); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				sum, err := (campaign.Engine{Workers: 4, Cache: st}).Run(set)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if sum.Scenarios != len(set) {
					b.Fatalf("ran %d scenarios, want %d", sum.Scenarios, len(set))
				}
				if stats := st.Stats(); arm.warm && stats.Hits < uint64(len(set)) {
					b.Fatalf("warm arm executed: %+v", stats)
				}
				st.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}
}

// BenchmarkPageSprayAttack measures the full "Take a Step Further" chain —
// boot, RX prime, buffer free, allocator spray, stale-IOTLB write, forged
// callback — as one campaign scenario per iteration.
func BenchmarkPageSprayAttack(b *testing.B) {
	set := []campaign.Scenario{{Kind: campaign.KindPageSpray, Seed: 2021, Trials: 1, Attempts: 1}}
	for i := 0; i < b.N; i++ {
		eng := campaign.Engine{Workers: 1}
		sum, err := eng.Run(set)
		if err != nil {
			b.Fatal(err)
		}
		if sum.Results[0].Err != "" {
			b.Fatalf("page spray errored: %s", sum.Results[0].Err)
		}
	}
}

// BenchmarkFuzzSignature is the fuzzer's per-execution bookkeeping cost:
// result → coverage signature.
func BenchmarkFuzzSignature(b *testing.B) {
	r := &campaign.Result{
		Kind: campaign.KindPageSpray, Success: true, Escalations: 1,
		WindowPath: "(ii) deferred IOTLB invalidation",
		Metrics:    map[string]string{"spray": "head", "spray_blocks": "8"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fuzz.Signature(r) == "" {
			b.Fatal("empty signature")
		}
	}
}

// BenchmarkFabricThroughput runs one campaign across 1, 2, and 4 in-process
// dmafaultd workers through the distributed fabric coordinator. All workers
// share this host's cores, so the scenario work itself cannot scale — what
// the three points measure is the fabric's coordination overhead (shard
// submit, lease wait, result merge) staying flat as the worker count grows.
// The summary is also checked against the local engine's bytes: a fabric
// that gains throughput by dropping determinism is not a result.
func BenchmarkFabricThroughput(b *testing.B) {
	set := campaign.LadderPreset(32, 2021)
	eng := campaign.Engine{Workers: 2}
	refSum, err := eng.RunCtx(context.Background(), set)
	if err != nil {
		b.Fatal(err)
	}
	want, err := refSum.JSON()
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", n), func(b *testing.B) {
			urls := make([]string, n)
			var servers []*httptest.Server
			for i := range urls {
				srv := faultd.NewServer()
				srv.Workers = 2
				ts := httptest.NewServer(srv.Handler())
				servers = append(servers, ts)
				urls[i] = ts.URL
			}
			defer func() {
				for _, ts := range servers {
					ts.Close()
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := fabric.New(fabric.Config{
					Workers:   urls,
					ShardSize: 8,
					Heartbeat: 100 * time.Millisecond,
				})
				sum, err := c.Run(context.Background(), set)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				got, err := sum.JSON()
				if err != nil {
					b.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					b.Fatal("fabric summary differs from single-node run")
				}
				b.StartTimer()
			}
			b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
		})
	}

	// The fleet observability arm: same campaign, two workers, but with the
	// fleetobs scrape loop running at its production cadence (the 1s
	// DefaultInterval) against both. Compare against workers=2 above — the
	// acceptance bar is <5% ns/op overhead, i.e. the telemetry plane rides
	// the idle margins of the coordination path. (The fabric unit tests run
	// the loop at 1ms for coverage; this arm measures what operators pay.)
	b.Run("workers=2-fleetobs", func(b *testing.B) {
		urls := make([]string, 2)
		var servers []*httptest.Server
		for i := range urls {
			srv := faultd.NewServer()
			srv.Workers = 2
			ts := httptest.NewServer(srv.Handler())
			servers = append(servers, ts)
			urls[i] = ts.URL
		}
		defer func() {
			for _, ts := range servers {
				ts.Close()
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := fabric.New(fabric.Config{
				Workers:   urls,
				ShardSize: 8,
				Heartbeat: 100 * time.Millisecond,
				FleetObs:  true,
			})
			sum, err := c.Run(context.Background(), set)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			got, err := sum.JSON()
			if err != nil {
				b.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				b.Fatal("fabric summary with fleetobs differs from single-node run")
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(len(set)*b.N)/b.Elapsed().Seconds(), "scenarios/s")
	})
}
