# Developer entry points. `make check` is the tier-1 gate plus vet and the
# race detector; CI should run exactly that.

GO ?= go

.PHONY: check build vet test race bench campaign

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign engine is the repo's first real use of host parallelism;
# always exercise it (and the attack substrates under it) with -race.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# A quick §6-shaped mixed campaign; see EXPERIMENTS.md for the full runs.
campaign:
	$(GO) run ./cmd/campaign -preset mixed -n 24 -quiet
