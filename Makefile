# Developer entry points. `make check` is the tier-1 gate plus formatting,
# vet, and the race detector; CI runs exactly that (.github/workflows/ci.yml).

GO ?= go

.PHONY: check fmt build vet test race bench benchgate campaign faultsmoke fuzzsmoke cachesmoke soaksmoke fabricsmoke chaossmoke fleetsmoke

check: fmt vet build race faultsmoke fuzzsmoke cachesmoke soaksmoke fabricsmoke chaossmoke fleetsmoke

# gofmt gate: fail listing any file that needs formatting.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The campaign engine is the repo's first real use of host parallelism;
# always exercise it (and the attack substrates under it) with -race.
race:
	$(GO) test -race -timeout 30m ./...

# One pass over every benchmark, teed through cmd/benchjson into a
# benchstat-comparable JSON artifact. -benchtime=3x keeps it minutes, not
# hours, while averaging enough iterations that benchgate compares means
# instead of single noisy draws (single-iteration artifacts on a loaded
# one-core host swing ±40% on identical code). BENCH_N numbers the
# committed snapshots: bump it and commit BENCH_N.json when the numbers
# move for a reason worth recording.
BENCH_N ?= 10
bench:
	$(GO) test -bench=. -benchmem -benchtime=3x -run=^$$ . | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_N).json

# Regression gate over the two newest committed BENCH_*.json: >20% ns/op
# regression on the fabric-throughput or cache-hit benchmarks fails. Advisory
# in CI (single-iteration runs are noisy) — a failure means re-run `make
# bench` and look, not an automatic veto.
benchgate:
	$(GO) run ./cmd/benchgate

# A quick §6-shaped mixed campaign; see EXPERIMENTS.md for the full runs.
campaign:
	$(GO) run ./cmd/campaign -preset mixed -n 24 -quiet

# Fault-injection smoke: a short mixed campaign with DMA corruption, allocator
# pressure, and scenario panics armed — proves the hardened execution layer
# (injection hooks, retries, panic isolation) end to end on every `make check`.
faultsmoke:
	$(GO) run ./cmd/campaign -preset mixed -n 8 -quiet \
		-fault "dma-corrupt:0.01,alloc-fail:0.002,scenario-panic:0.1" >/dev/null

# Coverage-guided fuzz smoke (~30s): a short seeded fuzz run over the full
# kind space (page-spray included) with minimization, proving the
# signature → corpus → energy-schedule loop end to end on every `make check`.
fuzzsmoke:
	$(GO) run ./cmd/campaign -fuzz -fuzz-attempts 24 -fuzz-batch 8 \
		-fuzz-minimize 2 -quiet >/dev/null

# Incremental-cache smoke: run a preset cold into a fresh result cache, then
# re-run it with -require-cached, which exits nonzero unless every scenario
# replayed from the store — proving digesting, persistence, and replay
# determinism end to end on every `make check`.
cachesmoke:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/campaign -preset ladder -n 8 -quiet -cache $$tmp/results.bin >/dev/null && \
	$(GO) run ./cmd/campaign -preset ladder -n 8 -quiet -cache $$tmp/results.bin -require-cached >/dev/null; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# Supervision chaos soak: boot dmafaultd, run fault-injected campaigns
# through the bounded scheduler, cancel some mid-flight, kill -9 the daemon
# mid-campaign, restart it on the same journal dir, and require boot recovery
# to finish the interrupted job (cmd/soaksmoke).
soaksmoke:
	$(GO) run ./cmd/soaksmoke

# Distributed-fabric soak: coordinator + 3 dmafaultd workers, kill -9 one
# worker while it holds shard leases, kill -9 the coordinator after the
# re-lease is journaled, resume it, and require the merged summary to be
# byte-identical to a single-node run with fabric_releases_total > 0
# (cmd/soaksmoke -fabric).
fabricsmoke:
	$(GO) run ./cmd/soaksmoke -fabric

# Byzantine-fabric soak: coordinator + 3 healthy workers, but every
# worker-bound request rides a deterministic netchaos plan (bit-flipped and
# truncated bodies, 503 storms, connection drops, short partitions). The
# merged summary must stay byte-identical to a clean single-node run, with
# fabric_integrity_rejected_total > 0 and fabric_steals_total > 0 proving
# the rejection and work-stealing defenses actually fired
# (cmd/soaksmoke -chaos).
chaossmoke:
	$(GO) run ./cmd/soaksmoke -chaos

# Fleet observability soak: coordinator + 3 workers with -fleetobs under a
# mild netchaos plan. Mid-run, /v1/fleet must attribute nonzero per-phase
# latency (queue-wait / execute / publish) to all three workers and
# fabrictop -once must render them; the merged summary must stay
# byte-identical to a clean single-node run — the telemetry plane is pure
# observation (cmd/soaksmoke -fleet).
fleetsmoke:
	$(GO) run ./cmd/soaksmoke -fleet
